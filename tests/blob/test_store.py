"""End-to-end tests of the in-process BlobSeer store."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig, SyntheticPayload
from repro.errors import (
    BlobError,
    InvalidRange,
    ProviderUnavailable,
    VersionNotReady,
)

BS = 64


@pytest.fixture
def store():
    return LocalBlobStore(config=StoreConfig(
        data_providers=8, metadata_providers=3, block_size=BS, seed=0
    ))


class TestCreate:
    def test_autonamed_blobs(self, store):
        a, b = store.create(), store.create()
        assert a != b
        assert store.snapshot(a).size == 0

    def test_explicit_id(self, store):
        assert store.create("mine") == "mine"

    def test_duplicate_rejected(self, store):
        store.create("x")
        with pytest.raises(BlobError):
            store.create("x")

    def test_per_blob_block_size(self, store):
        blob = store.create(block_size=16)
        store.write(blob, 0, b"z" * 32)
        assert store.snapshot(blob).block_size == 16


class TestWriteRead:
    def test_roundtrip_single_block(self, store):
        blob = store.create()
        v = store.write(blob, 0, b"a" * BS)
        assert v == 1
        assert store.read(blob) == b"a" * BS

    def test_roundtrip_multi_block(self, store):
        blob = store.create()
        data = bytes(range(256)) * BS  # 4 blocks
        store.write(blob, 0, data[: 4 * BS])
        assert store.read(blob) == data[: 4 * BS]

    def test_trailing_partial_block(self, store):
        blob = store.create()
        store.write(blob, 0, b"x" * (BS + 10))
        assert store.snapshot(blob).size == BS + 10
        assert store.read(blob) == b"x" * (BS + 10)

    def test_sub_range_reads(self, store):
        blob = store.create()
        data = bytes(i % 251 for i in range(3 * BS))
        store.write(blob, 0, data)
        assert store.read(blob, offset=10, size=100) == data[10:110]
        assert store.read(blob, offset=BS, size=BS) == data[BS : 2 * BS]
        assert store.read(blob, offset=3 * BS - 5, size=5) == data[-5:]

    def test_zero_size_read(self, store):
        blob = store.create()
        store.write(blob, 0, b"x" * BS)
        assert store.read(blob, offset=10, size=0) == b""

    def test_read_beyond_size_rejected(self, store):
        blob = store.create()
        store.write(blob, 0, b"x" * BS)
        with pytest.raises(InvalidRange):
            store.read(blob, offset=0, size=BS + 1)
        with pytest.raises(InvalidRange):
            store.read(blob, offset=-1, size=1)

    def test_empty_blob_read(self, store):
        blob = store.create()
        assert store.read(blob) == b""

    def test_zero_byte_write_rejected(self, store):
        blob = store.create()
        with pytest.raises(InvalidRange):
            store.write(blob, 0, b"")


class TestVersioning:
    def test_every_write_creates_a_version(self, store):
        blob = store.create()
        assert store.write(blob, 0, b"a" * BS) == 1
        assert store.write(blob, 0, b"b" * BS) == 2
        assert store.latest_version(blob) == 2

    def test_old_versions_stay_readable(self, store):
        """§III-A.1: all past versions remain accessible."""
        blob = store.create()
        store.write(blob, 0, b"a" * 2 * BS)
        store.write(blob, BS, b"b" * BS)
        store.append(blob, b"c" * BS)
        assert store.read(blob, version=1) == b"a" * 2 * BS
        assert store.read(blob, version=2) == b"a" * BS + b"b" * BS
        assert store.read(blob, version=3) == b"a" * BS + b"b" * BS + b"c" * BS

    def test_append_offsets(self, store):
        blob = store.create()
        store.append(blob, b"1" * BS)
        store.append(blob, b"2" * (BS + 5))
        assert store.read(blob) == b"1" * BS + b"2" * (BS + 5)

    def test_append_after_unaligned_rejected(self, store):
        blob = store.create()
        store.append(blob, b"x" * 10)
        with pytest.raises(InvalidRange):
            store.append(blob, b"y" * BS)

    def test_trailing_rewrite_after_unaligned(self, store):
        blob = store.create()
        store.append(blob, b"x" * 10)
        # The FS-layer pattern: rewrite the trailing partial block.
        store.write(blob, 0, b"x" * 10 + b"y" * BS)
        assert store.read(blob) == b"x" * 10 + b"y" * BS

    def test_unpublished_version_not_readable(self, store):
        blob = store.create()
        store.write(blob, 0, b"a" * BS)
        # Simulate an in-flight concurrent writer holding version 2.
        store.version_manager.assign_append(blob, BS)
        with pytest.raises(VersionNotReady):
            store.snapshot(blob, 2)
        # Latest still resolves to the published snapshot.
        assert store.snapshot(blob).version == 1

    def test_snapshot_isolation_under_overwrites(self, store):
        blob = store.create()
        data = {}
        for v in range(1, 6):
            payload = bytes([v]) * (v * BS)
            store.write(blob, 0, payload)
            data[v] = payload
        for v, payload in data.items():
            assert store.read(blob, version=v) == payload


class TestBlockLocations:
    def test_exposes_block_layout(self, store):
        """The §IV-C primitive Hadoop uses for affinity scheduling."""
        blob = store.create()
        store.write(blob, 0, b"z" * (3 * BS))
        locations = store.block_locations(blob, 0, 3 * BS)
        assert len(locations) == 3
        assert [l.offset for l in locations] == [0, BS, 2 * BS]
        assert all(len(l.providers) == 1 for l in locations)
        # round robin: three distinct providers
        assert len({l.providers[0] for l in locations}) == 3

    def test_sub_range(self, store):
        blob = store.create()
        store.write(blob, 0, b"z" * (3 * BS))
        locations = store.block_locations(blob, BS + 1, BS)
        assert [l.offset for l in locations] == [BS + 1, 2 * BS]

    def test_empty_range(self, store):
        blob = store.create()
        store.write(blob, 0, b"z" * BS)
        assert store.block_locations(blob, 0, 0) == []

    def test_out_of_range_rejected(self, store):
        blob = store.create()
        store.write(blob, 0, b"z" * BS)
        with pytest.raises(InvalidRange):
            store.block_locations(blob, 0, BS + 1)


class TestPlacement:
    def test_round_robin_balances(self, store):
        blob = store.create()
        store.write(blob, 0, b"q" * (16 * BS))
        counts = store.provider_block_counts()
        assert set(counts.values()) == {2}  # 16 blocks over 8 providers

    def test_synthetic_payload_write(self, store):
        blob = store.create()
        store.write(blob, 0, SyntheticPayload(4 * BS, tag="sim"))
        payload = store.read_payload(blob)
        assert payload.size == 4 * BS and not payload.is_real
        with pytest.raises(TypeError):
            store.read(blob)


class TestReplicationAndFailover:
    def test_replicated_write_counts(self):
        store = LocalBlobStore(config=StoreConfig(data_providers=6, block_size=BS, replication=3))
        blob = store.create()
        store.write(blob, 0, b"r" * (2 * BS))
        assert sum(store.provider_block_counts().values()) == 6

    def test_read_fails_over_to_replica(self):
        store = LocalBlobStore(config=StoreConfig(data_providers=6, block_size=BS, replication=2))
        blob = store.create()
        store.write(blob, 0, b"r" * BS)
        primary = store.block_locations(blob, 0, BS)[0].providers[0]
        store.fail_provider(primary)
        assert store.read(blob) == b"r" * BS

    def test_unreplicated_read_fails_when_provider_down(self, store):
        blob = store.create()
        store.write(blob, 0, b"r" * BS)
        primary = store.block_locations(blob, 0, BS)[0].providers[0]
        store.fail_provider(primary)
        with pytest.raises(ProviderUnavailable):
            store.read(blob)

    def test_writes_avoid_failed_providers(self, store):
        store.fail_provider("provider-000")
        blob = store.create()
        store.write(blob, 0, b"w" * (8 * BS))
        assert store.provider_block_counts()["provider-000"] == 0
