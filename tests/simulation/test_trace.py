"""Tests for the measurement instruments."""

import pytest

from repro.simulation import Engine, Recorder
from repro.simulation.trace import IntervalThroughput, Span


class TestSpan:
    def test_throughput(self):
        span = Span("read", start=1.0, end=3.0, nbytes=200.0)
        assert span.duration == 2.0
        assert span.throughput == 100.0

    def test_zero_duration(self):
        assert Span("x", 1.0, 1.0, 50.0).throughput == 0.0


class TestIntervalThroughput:
    def test_aggregate_uses_wall_interval(self):
        view = IntervalThroughput()
        view.add(Span("a", 0.0, 10.0, 1000.0))
        view.add(Span("b", 5.0, 20.0, 1000.0))
        assert view.total_bytes == 2000.0
        assert view.wall_interval == 20.0
        assert view.aggregate == pytest.approx(100.0)

    def test_per_client_mean(self):
        view = IntervalThroughput()
        view.add(Span("a", 0.0, 10.0, 1000.0))  # 100 B/s
        view.add(Span("b", 0.0, 5.0, 1000.0))  # 200 B/s
        assert view.per_client_mean == pytest.approx(150.0)

    def test_empty(self):
        view = IntervalThroughput()
        assert view.aggregate == 0.0
        assert view.per_client_mean == 0.0


class TestRecorder:
    def test_counters(self):
        rec = Recorder(Engine())
        rec.incr("reads")
        rec.incr("reads", 2)
        assert rec.counters["reads"] == 3

    def test_series_timestamps(self):
        engine = Engine()
        rec = Recorder(engine)

        def proc():
            rec.sample("depth", 1.0)
            yield engine.timeout(2.5)
            rec.sample("depth", 4.0)

        engine.run(engine.process(proc()))
        assert rec.series["depth"] == [(0.0, 1.0), (2.5, 4.0)]

    def test_spans_lifecycle(self):
        engine = Engine()
        rec = Recorder(engine)

        def proc():
            rec.span_start("c1", "read")
            yield engine.timeout(4.0)
            span = rec.span_end("c1", nbytes=400.0)
            return span

        span = engine.run(engine.process(proc()))
        assert span.throughput == pytest.approx(100.0)
        assert rec.spans_named("read") == [span]
        assert rec.throughput("read").aggregate == pytest.approx(100.0)
        assert rec.throughput().total_bytes == 400.0
