"""Tests for the simulated cluster container."""

import pytest

from repro.errors import ProviderUnavailable, SimulationError
from repro.simulation import (
    GRID5000_LATENCY,
    GRID5000_NIC_RATE,
    Engine,
    NodeSpec,
    SimCluster,
)


class TestClusterConstruction:
    def test_default_grid5000_constants(self):
        assert GRID5000_NIC_RATE == pytest.approx(117.5 * (1 << 20))
        assert GRID5000_LATENCY == pytest.approx(1e-4)

    def test_add_single_node(self):
        cluster = SimCluster()
        node = cluster.add_node("vm", NodeSpec(nic_rate=100.0))
        assert node.online
        assert cluster.node("vm") is node
        assert len(cluster) == 1

    def test_add_nodes_batch_naming(self):
        cluster = SimCluster()
        nodes = cluster.add_nodes("dp", 12)
        assert nodes[0].name == "dp-000"
        assert nodes[-1].name == "dp-011"
        assert len(cluster) == 12

    def test_duplicate_name_rejected(self):
        cluster = SimCluster()
        cluster.add_node("x")
        with pytest.raises(SimulationError):
            cluster.add_node("x")

    def test_unknown_lookup_rejected(self):
        with pytest.raises(SimulationError):
            SimCluster().node("ghost")

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            SimCluster().add_nodes("n", -1)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(nic_rate=0)


class TestNodeBehaviour:
    def test_send_between_nodes(self):
        engine = Engine()
        cluster = SimCluster(engine, latency=0.0)
        a = cluster.add_node("a", NodeSpec(nic_rate=100.0))
        cluster.add_node("b", NodeSpec(nic_rate=100.0))
        engine.run(a.send("b", 1000.0))
        assert engine.now == pytest.approx(10.0)

    def test_send_to_node_object(self):
        engine = Engine()
        cluster = SimCluster(engine, latency=0.0)
        a = cluster.add_node("a", NodeSpec(nic_rate=100.0))
        b = cluster.add_node("b", NodeSpec(nic_rate=100.0))
        engine.run(a.send(b, 500.0))
        assert engine.now == pytest.approx(5.0)

    def test_fail_kills_inflight_transfers(self):
        engine = Engine()
        cluster = SimCluster(engine, latency=0.0)
        a = cluster.add_node("a", NodeSpec(nic_rate=100.0))
        b = cluster.add_node("b", NodeSpec(nic_rate=100.0))
        doomed = a.send(b, 1e9)

        def killer():
            yield engine.timeout(1.0)
            b.fail()

        engine.process(killer())

        def waiter():
            with pytest.raises(ProviderUnavailable):
                yield doomed
            return engine.now

        p = engine.process(waiter())
        engine.run(p)
        assert engine.now == pytest.approx(1.0)
        assert not b.online
        b.recover()
        assert b.online
