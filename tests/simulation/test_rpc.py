"""Tests for the RPC service model (incl. serialization-point behaviour)."""

import pytest

from repro.errors import ProviderUnavailable
from repro.simulation import Engine, NodeSpec, Reply, RpcServer, SimCluster, call


@pytest.fixture
def setup():
    engine = Engine()
    cluster = SimCluster(engine, latency=0.001)
    server_node = cluster.add_node("server", NodeSpec(nic_rate=1e6))
    client_node = cluster.add_node("client", NodeSpec(nic_rate=1e6))
    return engine, cluster, server_node, client_node


class TestBasicRpc:
    def test_plain_handler(self, setup):
        engine, _, server_node, client_node = setup
        server = RpcServer(server_node, "echo", handler=lambda x: x * 2, service_time=0.0)

        def client():
            result = yield from call(client_node, server, 21)
            return result

        assert engine.run(engine.process(client())) == 42
        assert server.requests_served == 1

    def test_generator_handler_with_disk(self, setup):
        engine, _, server_node, client_node = setup

        def handler(payload):
            yield server_node.disk.write(payload)
            return "stored"

        server = RpcServer(server_node, "store", handler=handler, service_time=0.0)

        def client():
            result = yield from call(client_node, server, 1000.0)
            return (result, engine.now)

        result, t = engine.run(engine.process(client()))
        assert result == "stored"
        assert t > 0.002  # two latencies plus disk time

    def test_reply_sets_response_size(self, setup):
        engine, cluster, server_node, client_node = setup
        big = 5e5  # takes 0.5s at 1e6 B/s

        server = RpcServer(
            server_node, "reader", handler=lambda _x: Reply("data", size=big),
            service_time=0.0,
        )

        def client():
            result = yield from call(client_node, server, None)
            return (result, engine.now)

        result, t = engine.run(engine.process(client()))
        assert result == "data"
        assert t == pytest.approx(0.5 + 3 * 0.001, rel=1e-3)

    def test_handler_exception_propagates(self, setup):
        engine, _, server_node, client_node = setup

        def handler(_payload):
            raise ValueError("bad request")

        server = RpcServer(server_node, "bad", handler=handler, service_time=0.0)

        def client():
            with pytest.raises(ValueError, match="bad request"):
                yield from call(client_node, server, None)
            return "survived"

        assert engine.run(engine.process(client())) == "survived"

    def test_offline_server_raises(self, setup):
        engine, _, server_node, client_node = setup
        server = RpcServer(server_node, "dead", handler=lambda x: x, service_time=0.0)
        server_node.online = False

        def client():
            with pytest.raises(ProviderUnavailable):
                yield from call(client_node, server, None)
            return engine.now

        t = engine.run(engine.process(client()))
        assert t == pytest.approx(0.001)  # paid one latency to find out

    def test_validation(self, setup):
        _, _, server_node, _ = setup
        with pytest.raises(ValueError):
            RpcServer(server_node, "x", handler=lambda p: p, service_time=-1)
        with pytest.raises(ValueError):
            RpcServer(server_node, "x", handler=lambda p: p, concurrency=0)


class TestSerializationPoint:
    def test_single_worker_serializes(self, setup):
        """concurrency=1 forces FIFO service — the version-manager model."""
        engine, _, server_node, client_node = setup
        server = RpcServer(
            server_node, "vm", handler=lambda x: x, service_time=0.1, concurrency=1
        )
        completions = []

        def client(i):
            yield from call(client_node, server, i)
            completions.append((i, round(engine.now, 4)))

        for i in range(4):
            engine.process(client(i))
        engine.run()
        times = [t for _, t in completions]
        # Four requests, 0.1s service each, serialized: spaced by ~0.1s.
        assert times == sorted(times)
        assert times[-1] - times[0] == pytest.approx(0.3, abs=0.01)

    def test_multi_worker_parallelism(self, setup):
        engine, _, server_node, client_node = setup
        server = RpcServer(
            server_node, "mdp", handler=lambda x: x, service_time=0.1, concurrency=4
        )
        completions = []

        def client(i):
            yield from call(client_node, server, i)
            completions.append(engine.now)

        for i in range(4):
            engine.process(client(i))
        engine.run()
        # All four served in parallel: same completion time.
        assert max(completions) - min(completions) < 0.01

    def test_busy_time_accounting(self, setup):
        engine, _, server_node, client_node = setup
        server = RpcServer(server_node, "svc", handler=lambda x: x, service_time=0.2)

        def client():
            yield from call(client_node, server, None)

        engine.run(engine.process(client()))
        assert server.busy_time == pytest.approx(0.2, rel=1e-6)
