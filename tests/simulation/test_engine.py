"""Unit tests for the discrete-event engine kernel."""

import pytest

from repro.errors import Interrupt, SimulationError
from repro.simulation import Engine


@pytest.fixture
def engine():
    return Engine()


class TestTimeAdvance:
    def test_starts_at_zero(self, engine):
        assert engine.now == 0.0

    def test_timeout_advances_clock(self, engine):
        done = engine.timeout(5.0, value="x")
        assert engine.run(done) == "x"
        assert engine.now == 5.0

    def test_run_until_time(self, engine):
        hits = []
        for t in (1.0, 2.0, 3.0):
            engine.timeout(t).add_callback(lambda ev, t=t: hits.append(t))
        engine.run(until=2.5)
        assert hits == [1.0, 2.0]
        assert engine.now == 2.5
        engine.run()
        assert hits == [1.0, 2.0, 3.0]

    def test_same_time_fifo_order(self, engine):
        order = []
        for i in range(5):
            engine.timeout(1.0).add_callback(lambda ev, i=i: order.append(i))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_negative_timeout_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.timeout(-1)

    def test_run_to_past_rejected(self, engine):
        engine.run(engine.timeout(10))
        with pytest.raises(ValueError):
            engine.run(until=5)

    def test_peek(self, engine):
        assert engine.peek() == float("inf")
        engine.timeout(3.0)
        assert engine.peek() == 3.0


class TestProcesses:
    def test_process_sequence(self, engine):
        log = []

        def proc():
            log.append(("start", engine.now))
            yield engine.timeout(2)
            log.append(("mid", engine.now))
            yield engine.timeout(3)
            log.append(("end", engine.now))
            return "finished"

        p = engine.process(proc())
        assert engine.run(p) == "finished"
        assert log == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]

    def test_yield_value_passthrough(self, engine):
        def proc():
            got = yield engine.timeout(1, value=99)
            return got

        assert engine.run(engine.process(proc())) == 99

    def test_wait_on_process(self, engine):
        def child():
            yield engine.timeout(4)
            return "child-result"

        def parent():
            result = yield engine.process(child())
            return ("parent", result, engine.now)

        assert engine.run(engine.process(parent())) == ("parent", "child-result", 4.0)

    def test_process_failure_propagates_to_waiter(self, engine):
        def bad():
            yield engine.timeout(1)
            raise RuntimeError("boom")

        def parent():
            try:
                yield engine.process(bad())
            except RuntimeError as exc:
                return f"caught {exc}"

        assert engine.run(engine.process(parent())) == "caught boom"

    def test_unhandled_process_failure_raises_from_run(self, engine):
        def bad():
            yield engine.timeout(1)
            raise RuntimeError("unheard")

        engine.process(bad())
        with pytest.raises(RuntimeError, match="unheard"):
            engine.run()

    def test_yielding_non_event_fails_process(self, engine):
        def bad():
            yield 42

        p = engine.process(bad())
        with pytest.raises(SimulationError, match="must yield Event"):
            engine.run(p)

    def test_process_requires_generator(self, engine):
        with pytest.raises(TypeError, match="generator"):
            engine.process(lambda: None)

    def test_interrupt_delivers_cause(self, engine):
        def sleeper():
            try:
                yield engine.timeout(100)
            except Interrupt as intr:
                return ("interrupted", intr.cause, engine.now)

        p = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(3)
            p.interrupt(cause="wake-up")

        engine.process(interrupter())
        assert engine.run(p) == ("interrupted", "wake-up", 3.0)

    def test_interrupt_finished_process_rejected(self, engine):
        def quick():
            yield engine.timeout(1)

        p = engine.process(quick())
        engine.run(p)
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_interrupted_process_can_rewait(self, engine):
        def sleeper():
            try:
                yield engine.timeout(100)
            except Interrupt:
                yield engine.timeout(5)
            return engine.now

        p = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(2)
            p.interrupt()

        engine.process(interrupter())
        assert engine.run(p) == 7.0


class TestEvents:
    def test_manual_event(self, engine):
        ev = engine.event()

        def proc():
            value = yield ev
            return value

        p = engine.process(proc())

        def triggerer():
            yield engine.timeout(2)
            ev.succeed("manual")

        engine.process(triggerer())
        assert engine.run(p) == "manual"

    def test_double_trigger_rejected(self, engine):
        ev = engine.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, engine):
        with pytest.raises(TypeError):
            engine.event().fail("not an exception")

    def test_value_before_trigger_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.event().value

    def test_late_callback_runs_immediately(self, engine):
        ev = engine.timeout(1)
        engine.run()
        hits = []
        ev.add_callback(lambda e: hits.append(e.value))
        assert hits == [None]

    def test_all_of_waits_for_all(self, engine):
        def proc():
            t1, t2 = engine.timeout(1, "a"), engine.timeout(5, "b")
            results = yield engine.all_of([t1, t2])
            return (engine.now, sorted(results.values(), key=str))

        assert engine.run(engine.process(proc())) == (5.0, ["a", "b"])

    def test_any_of_returns_first(self, engine):
        def proc():
            t1, t2 = engine.timeout(1, "fast"), engine.timeout(5, "slow")
            results = yield engine.any_of([t1, t2])
            return (engine.now, list(results.values()))

        assert engine.run(engine.process(proc())) == (1.0, ["fast"])

    def test_all_of_empty_fires_immediately(self, engine):
        def proc():
            yield engine.all_of([])
            return engine.now

        assert engine.run(engine.process(proc())) == 0.0

    def test_all_of_failure_propagates(self, engine):
        def bad():
            yield engine.timeout(1)
            raise ValueError("child died")

        def proc():
            with pytest.raises(ValueError, match="child died"):
                yield engine.all_of([engine.process(bad()), engine.timeout(10)])
            return engine.now

        # Fails fast at t=1, well before the 10s timeout.
        assert engine.run(engine.process(proc())) == 1.0

    def test_deadlock_detection(self, engine):
        ev = engine.event()

        def stuck():
            yield ev

        p = engine.process(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            engine.run(p)

    def test_run_not_reentrant(self, engine):
        def proc():
            engine.run()
            yield engine.timeout(1)

        p = engine.process(proc())
        with pytest.raises(SimulationError, match="reentrant"):
            engine.run(p)


class TestDeterminism:
    def test_two_identical_runs_agree(self):
        def run_once():
            engine = Engine()
            log = []

            def worker(i):
                yield engine.timeout(i * 0.5)
                log.append((engine.now, i))
                yield engine.timeout(1.0)
                log.append((engine.now, i))

            for i in range(10):
                engine.process(worker(i))
            engine.run()
            return log

        assert run_once() == run_once()
