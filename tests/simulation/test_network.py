"""Tests for the max-min fair flow network.

These verify the analytic sharing behaviour the experiments depend on:
NIC capacities are respected, competing flows share fairly, bandwidth is
re-allocated when flows come and go, and the model is deterministic.
"""

import pytest

from repro.errors import ProviderUnavailable, SimulationError
from repro.simulation import Engine, FlowNetwork

MB = 1 << 20


@pytest.fixture
def engine():
    return Engine()


def make_net(engine, nodes=("a", "b", "c", "d"), rate=100.0, latency=0.0):
    net = FlowNetwork(engine, latency=latency)
    for n in nodes:
        net.add_node(n, egress=rate, ingress=rate)
    return net


class TestSingleFlow:
    def test_full_rate(self, engine):
        net = make_net(engine, rate=100.0)
        done = net.transfer("a", "b", 1000.0)
        engine.run(done)
        assert engine.now == pytest.approx(10.0, rel=1e-9)

    def test_latency_added_before_flow(self, engine):
        net = make_net(engine, rate=100.0, latency=0.5)
        done = net.transfer("a", "b", 1000.0)
        engine.run(done)
        assert engine.now == pytest.approx(10.5, rel=1e-9)

    def test_zero_bytes_costs_latency_only(self, engine):
        net = make_net(engine, rate=100.0, latency=0.25)
        engine.run(net.transfer("a", "b", 0.0))
        assert engine.now == pytest.approx(0.25)

    def test_loopback_fast_path(self, engine):
        net = make_net(engine, rate=100.0, latency=0.0)
        engine.run(net.transfer("a", "a", 10 * MB))
        # Loopback default rate is 4 GB/s: far faster than the NIC.
        assert engine.now < 0.01

    def test_unknown_node_rejected(self, engine):
        net = make_net(engine)
        with pytest.raises(SimulationError):
            net.transfer("a", "zz", 10)
        with pytest.raises(SimulationError):
            net.transfer("zz", "a", 10)

    def test_negative_bytes_rejected(self, engine):
        net = make_net(engine)
        with pytest.raises(ValueError):
            net.transfer("a", "b", -1)

    def test_duplicate_node_rejected(self, engine):
        net = make_net(engine)
        with pytest.raises(SimulationError):
            net.add_node("a", egress=1.0)


class TestFairSharing:
    def test_two_flows_same_source_halve(self, engine):
        """Egress NIC of 'a' is the bottleneck: each flow gets rate/2."""
        net = make_net(engine, rate=100.0)
        d1 = net.transfer("a", "b", 1000.0)
        d2 = net.transfer("a", "c", 1000.0)
        engine.run(engine.all_of([d1, d2]))
        assert engine.now == pytest.approx(20.0, rel=1e-9)

    def test_two_flows_same_dest_halve(self, engine):
        """Ingress NIC of 'b' is the bottleneck (reader hotspot)."""
        net = make_net(engine, rate=100.0)
        d1 = net.transfer("a", "b", 1000.0)
        d2 = net.transfer("c", "b", 1000.0)
        engine.run(engine.all_of([d1, d2]))
        assert engine.now == pytest.approx(20.0, rel=1e-9)

    def test_disjoint_flows_full_rate(self, engine):
        """Balanced layout: no shared NICs, no slowdown."""
        net = make_net(engine, rate=100.0)
        d1 = net.transfer("a", "b", 1000.0)
        d2 = net.transfer("c", "d", 1000.0)
        engine.run(engine.all_of([d1, d2]))
        assert engine.now == pytest.approx(10.0, rel=1e-9)

    def test_bandwidth_reallocated_after_completion(self, engine):
        """Short flow finishes; long flow speeds up to full rate."""
        net = make_net(engine, rate=100.0)
        net.transfer("a", "b", 500.0)  # shares egress until done
        long = net.transfer("a", "c", 1000.0)
        engine.run(long)
        # Phase 1: both at 50 B/s until short (500B) is done at t=10.
        # Long has 500B left, now at 100 B/s -> 5s more. Total 15s.
        assert engine.now == pytest.approx(15.0, rel=1e-6)

    def test_late_arrival_slows_existing_flow(self, engine):
        net = make_net(engine, rate=100.0)
        first = net.transfer("a", "b", 1000.0)

        def late():
            yield engine.timeout(5.0)
            yield net.transfer("a", "c", 1000.0)
            return engine.now

        p = engine.process(late())
        engine.run(first)
        # First: 5s at 100 (500B) + shared 50 B/s for remaining 500B -> t=15.
        assert engine.now == pytest.approx(15.0, rel=1e-6)
        engine.run(p)
        # Late flow: 500B at 50 B/s (t=5..15) + 500B at 100 B/s -> t=20.
        assert engine.process and engine.now == pytest.approx(20.0, rel=1e-6)

    def test_maxmin_not_proportional(self, engine):
        """Max-min gives the cross flow the leftover, not a naive split.

        Flows: a->b, a->c, d->c.  Egress(a) splits 50/50; ingress(c)
        then has 50 left for d->c after a->c's 50... both links at 100:
        a->b: 50, a->c: 50, d->c: 50 under equal caps.  With ingress(c)
        raised to 150, d->c should get 100 (its egress cap).
        """
        net = FlowNetwork(engine, latency=0.0)
        net.add_node("a", egress=100.0, ingress=100.0)
        net.add_node("b", egress=100.0, ingress=100.0)
        net.add_node("c", egress=100.0, ingress=150.0)
        net.add_node("d", egress=100.0, ingress=100.0)
        net.transfer("a", "b", 1e9)
        net.transfer("a", "c", 1e9)
        done = net.transfer("d", "c", 1000.0)
        engine.run(done)
        assert engine.now == pytest.approx(10.0, rel=1e-6)

    def test_core_capacity_limits_aggregate(self, engine):
        net = FlowNetwork(engine, latency=0.0, core_capacity=100.0)
        for n in ("a", "b", "c", "d"):
            net.add_node(n, egress=100.0, ingress=100.0)
        d1 = net.transfer("a", "b", 500.0)
        d2 = net.transfer("c", "d", 500.0)
        engine.run(engine.all_of([d1, d2]))
        # Disjoint NICs but shared 100 B/s core: each at 50 -> 10s.
        assert engine.now == pytest.approx(10.0, rel=1e-6)

    def test_n_readers_one_server_shape(self, engine):
        """The Figure 4 hotspot in miniature: k readers of one node."""
        nodes = ["server"] + [f"client{i}" for i in range(4)]
        net = make_net(engine, nodes=nodes, rate=100.0)
        events = [net.transfer("server", f"client{i}", 1000.0) for i in range(4)]
        engine.run(engine.all_of(events))
        assert engine.now == pytest.approx(40.0, rel=1e-6)


class TestStatsAndCancel:
    def test_stats_accumulate(self, engine):
        net = make_net(engine, rate=100.0)
        engine.run(net.transfer("a", "b", 1000.0))
        engine.run(net.transfer("a", "c", 500.0))
        assert net.stats.transfers_started == 2
        assert net.stats.transfers_completed == 2
        assert net.stats.bytes_completed == pytest.approx(1500.0)
        assert net.stats.bytes_by_source["a"] == pytest.approx(1500.0)
        assert net.stats.bytes_by_dest["b"] == pytest.approx(1000.0)

    def test_cancel_node_flows(self, engine):
        net = make_net(engine, rate=100.0)
        doomed = net.transfer("a", "b", 1e6)
        survivor = net.transfer("c", "d", 1000.0)

        def killer():
            yield engine.timeout(1.0)
            count = net.cancel_node_flows("b", ProviderUnavailable("b down"))
            assert count == 1

        engine.process(killer())

        def waiter():
            with pytest.raises(ProviderUnavailable):
                yield doomed
            return engine.now

        p = engine.process(waiter())
        engine.run(survivor)
        assert engine.now == pytest.approx(10.0, rel=1e-6)
        engine.run(p)

    def test_cancel_before_start_with_latency(self, engine):
        net = make_net(engine, rate=100.0, latency=1.0)
        doomed = net.transfer("a", "b", 1e6)
        doomed_flows = [f for f in [doomed]]
        assert doomed_flows  # the event exists even before the flow starts

        def waiter():
            with pytest.raises(ProviderUnavailable):
                yield doomed

        p = engine.process(waiter())

        def killer():
            yield engine.timeout(0.5)  # before latency elapses
            # No active flow yet; cancel via the event directly.
            assert net.cancel_node_flows("b", ProviderUnavailable("x")) == 0

        engine.process(killer())
        engine.run(until=0.6)
        # flow starts at t=1.0 and then runs to completion normally
        engine.run(until=2.0)
        assert net.active_flows == 1
        net.cancel_node_flows("b", ProviderUnavailable("late kill"))
        engine.run(p)


class TestDeterminism:
    def test_identical_runs_identical_timings(self):
        def run_once():
            engine = Engine()
            net = FlowNetwork(engine, latency=1e-4)
            for i in range(20):
                net.add_node(f"n{i}", egress=100.0, ingress=100.0)
            completions = []
            events = []
            for i in range(30):
                ev = net.transfer(f"n{i % 20}", f"n{(i * 7 + 3) % 20}", 100.0 + i)
                ev.add_callback(lambda e, i=i: completions.append((i, engine.now)))
                events.append(ev)
            engine.run(engine.all_of(events))
            return completions

        assert run_once() == run_once()
