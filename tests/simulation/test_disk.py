"""Tests for the FIFO disk model."""

import pytest

from repro.simulation import Disk, DiskSpec, Engine


@pytest.fixture
def engine():
    return Engine()


class TestDiskSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DiskSpec(read_rate=0)
        with pytest.raises(ValueError):
            DiskSpec(write_rate=-1)
        with pytest.raises(ValueError):
            DiskSpec(seek_time=-0.1)
        with pytest.raises(ValueError):
            DiskSpec(channels=0)


class TestDiskService:
    def test_read_duration(self, engine):
        disk = Disk(engine, DiskSpec(read_rate=100.0, write_rate=50.0, seek_time=1.0))
        engine.run(disk.read(1000.0))
        assert engine.now == pytest.approx(11.0)

    def test_write_duration(self, engine):
        disk = Disk(engine, DiskSpec(read_rate=100.0, write_rate=50.0, seek_time=1.0))
        engine.run(disk.write(1000.0))
        assert engine.now == pytest.approx(21.0)

    def test_fifo_serialization(self, engine):
        disk = Disk(engine, DiskSpec(read_rate=100.0, write_rate=100.0, seek_time=0.0))
        finish = []
        for i in range(3):
            disk.read(100.0).add_callback(lambda ev, i=i: finish.append((i, engine.now)))
        engine.run()
        assert finish == [(0, 1.0), (1, 2.0), (2, 3.0)]

    def test_channels_parallelism(self, engine):
        disk = Disk(
            engine, DiskSpec(read_rate=100.0, write_rate=100.0, seek_time=0.0, channels=2)
        )
        finish = []
        for i in range(4):
            disk.read(100.0).add_callback(lambda ev, i=i: finish.append(engine.now))
        engine.run()
        assert finish == [1.0, 1.0, 2.0, 2.0]

    def test_accounting(self, engine):
        disk = Disk(engine, DiskSpec(read_rate=100.0, write_rate=50.0, seek_time=0.5))
        engine.run(disk.read(200.0))
        engine.run(disk.write(100.0))
        assert disk.bytes_read == pytest.approx(200.0)
        assert disk.bytes_written == pytest.approx(100.0)
        assert disk.busy_time == pytest.approx(0.5 + 2.0 + 0.5 + 2.0)

    def test_negative_bytes_rejected(self, engine):
        disk = Disk(engine)
        with pytest.raises(ValueError):
            disk.read(-1)

    def test_queue_depth(self, engine):
        disk = Disk(engine, DiskSpec(read_rate=1.0, write_rate=1.0, seek_time=0.0))
        disk.read(100.0)
        disk.read(100.0)
        disk.read(100.0)
        assert disk.queue_depth == 2
