"""Edge-case tests for engine/resource interactions."""

import pytest

from repro.errors import Interrupt
from repro.simulation import Engine
from repro.simulation.resources import Gate, Resource, Store


@pytest.fixture
def engine():
    return Engine()


class TestInterruptInteractions:
    def test_interrupt_while_queued_on_resource(self, engine):
        """A process interrupted while waiting for a resource cancels
        its request and never holds a slot."""
        res = Resource(engine, capacity=1)

        def holder():
            req = yield from res.acquire()
            yield engine.timeout(10)
            res.release(req)

        engine.process(holder())

        def waiter():
            req = res.request()
            try:
                yield req
            except Interrupt:
                res.release(req)  # cancel the pending request
                return "gave up"

        p = engine.process(waiter())

        def interrupter():
            yield engine.timeout(1)
            p.interrupt()

        engine.process(interrupter())
        assert engine.run(p) == "gave up"
        assert res.queued == 0
        engine.run()
        assert res.in_use == 0

    def test_interrupt_while_waiting_on_store(self, engine):
        store = Store(engine)

        def consumer():
            try:
                yield store.get()
            except Interrupt:
                return "interrupted"

        p = engine.process(consumer())

        def interrupter():
            yield engine.timeout(2)
            p.interrupt()

        engine.process(interrupter())
        assert engine.run(p) == "interrupted"

    def test_back_to_back_interrupts_coalesce(self, engine):
        """A second interrupt before the first is delivered coalesces:
        the generator sees exactly one Interrupt."""
        hits = []

        def sleeper():
            try:
                yield engine.timeout(100)
            except Interrupt as intr:
                hits.append(intr.cause)
            yield engine.timeout(5)  # interruptible again afterwards
            return (hits, engine.now)

        p = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(1)
            p.interrupt("first")
            p.interrupt("second")  # coalesced away

        engine.process(interrupter())
        assert engine.run(p) == (["first"], 6.0)

    def test_reinterrupt_after_delivery_works(self, engine):
        hits = []

        def sleeper():
            for _ in range(2):
                try:
                    yield engine.timeout(100)
                except Interrupt as intr:
                    hits.append(intr.cause)
            return hits

        p = engine.process(sleeper())

        def interrupter():
            yield engine.timeout(1)
            p.interrupt("first")
            yield engine.timeout(1)  # first has been delivered by now
            p.interrupt("second")

        engine.process(interrupter())
        assert engine.run(p) == ["first", "second"]


class TestZeroDelays:
    def test_zero_timeout_fires_same_time(self, engine):
        def proc():
            yield engine.timeout(0)
            return engine.now

        assert engine.run(engine.process(proc())) == 0.0

    def test_gate_threshold_zero_immediate(self, engine):
        gate = Gate(engine)

        def proc():
            yield gate.wait_for(0)
            return "ok"

        assert engine.run(engine.process(proc())) == "ok"

    def test_chained_zero_timeouts_preserve_order(self, engine):
        log = []

        def worker(tag):
            yield engine.timeout(0)
            log.append(tag)
            yield engine.timeout(0)
            log.append(tag)

        engine.process(worker("a"))
        engine.process(worker("b"))
        engine.run()
        assert log == ["a", "b", "a", "b"]


class TestRunSemantics:
    def test_run_until_event_returns_value_exactly_once(self, engine):
        ev = engine.timeout(3, value="payload")
        assert engine.run(ev) == "payload"
        # Running again with the processed event returns immediately.
        assert engine.run(ev) == "payload"
        assert engine.now == 3.0

    def test_run_until_failed_event_raises(self, engine):
        ev = engine.event()

        def failer():
            yield engine.timeout(1)
            ev.fail(RuntimeError("bad"))

        engine.process(failer())
        with pytest.raises(RuntimeError, match="bad"):
            engine.run(ev)

    def test_all_of_mixed_processed_and_pending(self, engine):
        early = engine.timeout(1)
        engine.run(until=2)
        late = engine.timeout(5)

        def proc():
            yield engine.all_of([early, late])
            return engine.now

        assert engine.run(engine.process(proc())) == 7.0
