"""Unit tests for Resource / Store / Gate synchronization primitives."""

import pytest

from repro.errors import SimulationError
from repro.simulation import Engine
from repro.simulation.resources import Gate, Resource, Store


@pytest.fixture
def engine():
    return Engine()


class TestResource:
    def test_capacity_validation(self, engine):
        with pytest.raises(ValueError):
            Resource(engine, capacity=0)

    def test_immediate_grant_within_capacity(self, engine):
        res = Resource(engine, capacity=2)

        def proc():
            r1 = yield from res.acquire()
            r2 = yield from res.acquire()
            assert engine.now == 0.0
            assert res.in_use == 2
            res.release(r1)
            res.release(r2)
            return res.in_use

        assert engine.run(engine.process(proc())) == 0

    def test_fifo_queueing_serializes(self, engine):
        res = Resource(engine, capacity=1)
        log = []

        def worker(i):
            req = yield from res.acquire()
            log.append(("got", i, engine.now))
            yield engine.timeout(2)
            res.release(req)

        for i in range(3):
            engine.process(worker(i))
        engine.run()
        assert log == [("got", 0, 0.0), ("got", 1, 2.0), ("got", 2, 4.0)]

    def test_capacity_two_parallelism(self, engine):
        res = Resource(engine, capacity=2)
        finish_times = []

        def worker():
            req = yield from res.acquire()
            yield engine.timeout(3)
            res.release(req)
            finish_times.append(engine.now)

        for _ in range(4):
            engine.process(worker())
        engine.run()
        assert finish_times == [3.0, 3.0, 6.0, 6.0]

    def test_release_pending_request_cancels(self, engine):
        res = Resource(engine, capacity=1)

        def holder():
            req = yield from res.acquire()
            yield engine.timeout(10)
            res.release(req)

        engine.process(holder())

        def impatient():
            yield engine.timeout(1)
            req = res.request()  # queued behind holder
            assert res.queued == 1
            res.release(req)  # give up before grant
            assert res.queued == 0

        engine.process(impatient())
        engine.run()

    def test_release_foreign_request_rejected(self, engine):
        res1, res2 = Resource(engine), Resource(engine)
        req = res1.request()
        with pytest.raises(SimulationError):
            res2.release(req)


class TestStore:
    def test_put_then_get(self, engine):
        store = Store(engine)

        def proc():
            yield store.put("a")
            yield store.put("b")
            first = yield store.get()
            second = yield store.get()
            return (first, second)

        assert engine.run(engine.process(proc())) == ("a", "b")

    def test_get_blocks_until_put(self, engine):
        store = Store(engine)

        def consumer():
            item = yield store.get()
            return (item, engine.now)

        p = engine.process(consumer())

        def producer():
            yield engine.timeout(4)
            yield store.put("late")

        engine.process(producer())
        assert engine.run(p) == ("late", 4.0)

    def test_bounded_put_blocks(self, engine):
        store = Store(engine, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            log.append(("put1", engine.now))
            yield store.put(2)
            log.append(("put2", engine.now))

        def consumer():
            yield engine.timeout(5)
            item = yield store.get()
            log.append(("got", item, engine.now))

        engine.process(producer())
        engine.process(consumer())
        engine.run()
        assert ("put1", 0.0) in log
        assert ("put2", 5.0) in log  # unblocked by the get

    def test_capacity_validation(self, engine):
        with pytest.raises(ValueError):
            Store(engine, capacity=0)

    def test_len(self, engine):
        store = Store(engine)

        def proc():
            yield store.put("x")
            assert len(store) == 1
            yield store.get()
            assert len(store) == 0

        engine.run(engine.process(proc()))


class TestGate:
    def test_waiters_release_in_threshold_order(self, engine):
        gate = Gate(engine)
        log = []

        def waiter(threshold):
            yield gate.wait_for(threshold)
            log.append((threshold, engine.now))

        for t in (3, 1, 2):
            engine.process(waiter(t))

        def advancer():
            for level in (1, 2, 3):
                yield engine.timeout(1)
                gate.advance(level)

        engine.process(advancer())
        engine.run()
        assert log == [(1, 1.0), (2, 2.0), (3, 3.0)]

    def test_past_threshold_immediate(self, engine):
        gate = Gate(engine, level=5)

        def proc():
            yield gate.wait_for(3)
            return engine.now

        assert engine.run(engine.process(proc())) == 0.0

    def test_monotonicity_enforced(self, engine):
        gate = Gate(engine, level=2)
        with pytest.raises(SimulationError):
            gate.advance(1)

    def test_batch_release(self, engine):
        gate = Gate(engine)
        released = []

        def waiter(i):
            yield gate.wait_for(i)
            released.append(i)

        for i in (1, 2, 3, 4):
            engine.process(waiter(i))

        def advancer():
            yield engine.timeout(1)
            gate.advance(3)  # releases 1, 2, 3 at once

        engine.process(advancer())
        engine.run(until=2)
        assert sorted(released) == [1, 2, 3]
        assert gate.level == 3
