"""Property-based tests of the fluid network's physical sanity.

Whatever the topology and the transfer mix, the model must conserve
bytes, respect capacity lower bounds on completion times, and stay
deterministic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation import Engine, FlowNetwork


@st.composite
def workloads(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=8))
    rates = [
        float(draw(st.integers(min_value=10, max_value=1000))) for _ in range(n_nodes)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=12))
    flows = []
    for _ in range(n_flows):
        src = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        dst = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        size = float(draw(st.integers(min_value=1, max_value=100_000)))
        delay = float(draw(st.integers(min_value=0, max_value=50)))
        cap = draw(
            st.one_of(st.none(), st.integers(min_value=5, max_value=500))
        )
        flows.append((src, dst, size, delay, None if cap is None else float(cap)))
    return rates, flows


def run_workload(rates, flows):
    engine = Engine()
    net = FlowNetwork(engine, latency=0.0)
    for i, rate in enumerate(rates):
        net.add_node(f"n{i}", egress=rate, ingress=rate)
    completions = {}

    def starter(index, src, dst, size, delay, cap):
        yield engine.timeout(delay)
        yield net.transfer(f"n{src}", f"n{dst}", size, rate_cap=cap)
        completions[index] = engine.now

    procs = [
        engine.process(starter(i, *flow)) for i, flow in enumerate(flows)
    ]
    engine.run(engine.all_of(procs))
    return engine, net, completions


class TestConservation:
    @given(workloads())
    @settings(max_examples=50)
    def test_property_all_bytes_delivered(self, workload):
        rates, flows = workload
        _, net, completions = run_workload(rates, flows)
        assert len(completions) == len(flows)
        assert net.stats.transfers_completed == len(flows)
        expected = sum(size for _, _, size, _, _ in flows)
        assert net.stats.bytes_completed == pytest.approx(expected, rel=1e-6)

    @given(workloads())
    @settings(max_examples=50)
    def test_property_completion_respects_capacity(self, workload):
        """No flow beats size / min(path capacity, cap) after its start."""
        rates, flows = workload
        _, _, completions = run_workload(rates, flows)
        for index, (src, dst, size, delay, cap) in enumerate(flows):
            if src == dst:
                continue  # loopback runs at memory speed
            best_rate = min(rates[src], rates[dst])
            if cap is not None:
                best_rate = min(best_rate, cap)
            lower_bound = delay + size / best_rate
            assert completions[index] >= lower_bound * (1 - 1e-6)

    @given(workloads())
    @settings(max_examples=25)
    def test_property_deterministic(self, workload):
        rates, flows = workload
        _, _, first = run_workload(rates, flows)
        _, _, second = run_workload(rates, flows)
        assert first == second

    @given(workloads())
    @settings(max_examples=25)
    def test_property_single_flow_times_exact(self, workload):
        """Run the flows one at a time: completion = start + size/rate."""
        rates, flows = workload
        engine = Engine()
        net = FlowNetwork(engine, latency=0.0)
        for i, rate in enumerate(rates):
            net.add_node(f"n{i}", egress=rate, ingress=rate)

        def sequential():
            for src, dst, size, _delay, cap in flows:
                if src == dst:
                    continue
                t0 = engine.now
                yield net.transfer(f"n{src}", f"n{dst}", size, rate_cap=cap)
                rate = min(rates[src], rates[dst])
                if cap is not None:
                    rate = min(rate, cap)
                assert engine.now - t0 == pytest.approx(size / rate, rel=1e-9)

        engine.run(engine.process(sequential()))
