"""Tests for per-flow rate caps and the small-flow bypass."""

import pytest

from repro.simulation import Engine, FlowNetwork


@pytest.fixture
def engine():
    return Engine()


def make_net(engine, rate=100.0, **kwargs):
    net = FlowNetwork(engine, latency=0.0, **kwargs)
    for n in ("a", "b", "c", "d"):
        net.add_node(n, egress=rate, ingress=rate)
    return net


class TestRateCap:
    def test_cap_below_fair_share(self, engine):
        net = make_net(engine, rate=100.0)
        done = net.transfer("a", "b", 1000.0, rate_cap=50.0)
        engine.run(done)
        assert engine.now == pytest.approx(20.0, rel=1e-6)

    def test_cap_above_fair_share_is_inert(self, engine):
        net = make_net(engine, rate=100.0)
        done = net.transfer("a", "b", 1000.0, rate_cap=500.0)
        engine.run(done)
        assert engine.now == pytest.approx(10.0, rel=1e-6)

    def test_capped_flow_leaves_bandwidth_to_others(self, engine):
        """Max-min: the capped flow's unused share goes to the other."""
        net = make_net(engine, rate=100.0)
        capped = net.transfer("a", "b", 300.0, rate_cap=30.0)
        free = net.transfer("a", "c", 700.0)
        engine.run(engine.all_of([capped, free]))
        # capped at 30, free gets 70: both finish exactly at t=10.
        assert engine.now == pytest.approx(10.0, rel=1e-6)

    def test_cap_on_loopback(self, engine):
        net = make_net(engine, rate=100.0)
        done = net.transfer("a", "a", 1000.0, rate_cap=10.0)
        engine.run(done)
        assert engine.now == pytest.approx(100.0, rel=1e-6)

    def test_invalid_cap_rejected(self, engine):
        net = make_net(engine)
        with pytest.raises(ValueError):
            net.transfer("a", "b", 10.0, rate_cap=0.0)


class TestSmallFlowBypass:
    def test_small_flow_duration(self, engine):
        net = make_net(engine, rate=100.0, small_flow_cutoff=64.0)
        done = net.transfer("a", "b", 64.0)
        engine.run(done)
        assert engine.now == pytest.approx(0.64, rel=1e-6)

    def test_small_flows_do_not_contend(self, engine):
        """Bypassed flows ignore each other (the approximation)."""
        net = make_net(engine, rate=100.0, small_flow_cutoff=64.0)
        events = [net.transfer("a", "b", 64.0) for _ in range(10)]
        engine.run(engine.all_of(events))
        assert engine.now == pytest.approx(0.64, rel=1e-6)

    def test_large_flows_still_contend(self, engine):
        net = make_net(engine, rate=100.0, small_flow_cutoff=64.0)
        d1 = net.transfer("a", "b", 1000.0)
        d2 = net.transfer("a", "c", 1000.0)
        engine.run(engine.all_of([d1, d2]))
        assert engine.now == pytest.approx(20.0, rel=1e-6)

    def test_small_flow_respects_cap(self, engine):
        net = make_net(engine, rate=100.0, small_flow_cutoff=64.0)
        done = net.transfer("a", "b", 64.0, rate_cap=8.0)
        engine.run(done)
        assert engine.now == pytest.approx(8.0, rel=1e-6)

    def test_stats_still_counted(self, engine):
        net = make_net(engine, rate=100.0, small_flow_cutoff=64.0)
        engine.run(net.transfer("a", "b", 64.0))
        assert net.stats.transfers_completed == 1
        assert net.stats.bytes_by_dest["b"] == pytest.approx(64.0)

    def test_validation(self, engine):
        with pytest.raises(ValueError):
            FlowNetwork(engine, small_flow_cutoff=-1.0)


class TestSolverStress:
    def test_many_flows_correct_aggregate(self, engine):
        """200 single-destination flows: server ingress shared 200 ways."""
        net = FlowNetwork(engine, latency=0.0)
        net.add_node("server", egress=100.0, ingress=100.0)
        for i in range(200):
            net.add_node(f"c{i}", egress=100.0, ingress=100.0)
        events = [net.transfer(f"c{i}", "server", 10.0) for i in range(200)]
        engine.run(engine.all_of(events))
        # 2000 bytes through a 100 B/s ingress: exactly 20 s.
        assert engine.now == pytest.approx(20.0, rel=1e-6)

    def test_mixed_caps_and_hotspots(self, engine):
        net = make_net(engine, rate=100.0)
        flows = [
            net.transfer("a", "b", 100.0, rate_cap=10.0),
            net.transfer("c", "b", 100.0),
            net.transfer("d", "b", 100.0),
        ]
        engine.run(engine.all_of(flows))
        # Capped flow: 10 B/s for 10s... ingress(b)=100 shared: capped
        # gets 10, others split 45 each -> finish at 100/45=2.22s, then
        # capped continues at 10 -> total 10 s.
        assert engine.now == pytest.approx(10.0, rel=1e-4)
