"""Cross-layer integration: whole jobs, both backends, identical answers.

The paper's headline integration claim is that "Hadoop Map/Reduce
applications run out-of-the-box" on BSFS exactly as on HDFS.  Here the
*functional* engine runs the same jobs against both file systems and
must produce byte-identical results; BSFS additionally exposes its
extras (append, versioning) through the same job pipeline.
"""

import pytest

from repro.blob import LocalBlobStore, StoreConfig, collect_garbage
from repro.bsfs import BSFSFileSystem
from repro.hdfs import HDFSFileSystem
from repro.mapreduce import LocalJobRunner
from repro.mapreduce.apps import grep_job, random_text_job, wordcount_job

BS = 512


def backends():
    bsfs = BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=8, metadata_providers=3, block_size=BS))
    )
    hdfs = HDFSFileSystem(datanodes=8, block_size=BS, seed=11)
    return {"bsfs": bsfs, "hdfs": hdfs}


class TestOutOfTheBox:
    def test_same_pipeline_same_results(self):
        """RandomTextWriter -> grep, run on both backends: identical
        outputs (the job logic never sees which storage it runs on)."""
        results = {}
        for name, fs in backends().items():
            runner = LocalJobRunner(fs, trackers=["t0", "t1", "t2"])
            runner.run(random_text_job("/rtw", num_mappers=3, bytes_per_mapper=4000, seed=5))
            grep_result = runner.run(grep_job(["/rtw"], "/out", "storage"))
            results[name] = fs.read_file(grep_result.output_paths[0])
        assert results["bsfs"] == results["hdfs"]

    def test_wordcount_identical_counts(self):
        text = b"alpha beta gamma alpha\nbeta alpha\n" * 64
        outputs = {}
        for name, fs in backends().items():
            fs.write_file("/in/text", text, client="edge")
            result = LocalJobRunner(fs).run(
                wordcount_job(["/in"], "/wc", num_reducers=3)
            )
            outputs[name] = b"".join(
                fs.read_file(p) for p in sorted(result.output_paths)
            )
        assert outputs["bsfs"] == outputs["hdfs"]

    def test_locality_better_on_balanced_bsfs(self):
        """With trackers = storage hosts, BSFS's balanced layout yields
        at least as many local maps as HDFS's skewed one."""
        locality = {}
        for name, fs in backends().items():
            data = b"x" * (BS - 1) + b"\n"
            fs.write_file("/in/big", data * 24, client="edge-node")
            if name == "bsfs":
                trackers = list(fs.store.providers)
            else:
                trackers = list(fs.datanodes)
            result = LocalJobRunner(fs, trackers=trackers).run(
                grep_job(["/in/big"], "/out", "zzz")
            )
            locality[name] = result.locality
        assert locality["bsfs"] >= locality["hdfs"]


class TestBsfsExtrasThroughJobs:
    def test_append_then_rerun_grep(self):
        """BSFS lets a later job append to the dataset a previous job
        scanned — impossible on HDFS (write-once)."""
        fs = backends()["bsfs"]
        fs.write_file("/log", b"needle one\nhay\n")
        first = LocalJobRunner(fs).run(grep_job(["/log"], "/out1", "needle"))
        with fs.append("/log") as out:
            out.write(b"needle two\n")
        second = LocalJobRunner(fs).run(grep_job(["/log"], "/out2", "needle"))
        count1 = fs.read_file(first.output_paths[0])
        count2 = fs.read_file(second.output_paths[0])
        assert count1 == b"matching-lines\t1\n"
        assert count2 == b"matching-lines\t2\n"

    def test_versioned_input_workflow(self):
        """§VI-A: a reader pinned to the old version scans the original
        dataset while a writer evolves it."""
        fs = backends()["bsfs"]
        fs.write_file("/data", b"v1 contents\n" * 10)
        v1 = fs.file_versions("/data")
        with fs.append("/data") as out:
            out.write(b"v2 extras\n" * 5)
        old = fs.open("/data", version=v1)
        assert b"v2 extras" not in old.read()
        assert b"v2 extras" in fs.read_file("/data")

    def test_gc_after_job_pipeline(self):
        """Old intermediate versions can be collected; the final data
        stays byte-identical."""
        fs = backends()["bsfs"]
        fs.write_file("/work", b"a" * BS)
        for i in range(4):
            with fs.append("/work") as out:
                out.write(bytes([i]) * BS)
        expected = fs.read_file("/work")
        blob = fs.blob_of("/work")
        latest = fs.store.latest_version(blob)
        report = collect_garbage(fs.store, blob, retain_from=latest)
        assert report.nodes_deleted > 0
        assert fs.read_file("/work") == expected

    def test_hdfs_job_output_immutable(self):
        from repro.errors import AppendNotSupported

        fs = backends()["hdfs"]
        fs.write_file("/in/x", b"data\n")
        result = LocalJobRunner(fs).run(grep_job(["/in/x"], "/out", "data"))
        with pytest.raises(AppendNotSupported):
            fs.append(result.output_paths[0])
