"""Every example script must run clean (they are executable docs)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "OK" in result.stdout or "identical" in result.stdout
