"""Tests for paths and the shared directory tree."""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileAlreadyExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from repro.fsapi import (
    DirectoryTree,
    base_name,
    normalize_path,
    parent_path,
)


class TestPaths:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/", "/"),
            ("/a", "/a"),
            ("/a/", "/a"),
            ("//a//b//", "/a/b"),
            ("/a/b/c", "/a/b/c"),
        ],
    )
    def test_normalize(self, raw, expected):
        assert normalize_path(raw) == expected

    def test_relative_rejected(self):
        with pytest.raises(ValueError):
            normalize_path("a/b")
        with pytest.raises(ValueError):
            normalize_path("/a/../b")
        with pytest.raises(ValueError):
            normalize_path("/a/./b")

    def test_parent(self):
        assert parent_path("/a/b/c") == "/a/b"
        assert parent_path("/a") == "/"
        assert parent_path("/") == "/"

    def test_base_name(self):
        assert base_name("/a/b/c") == "c"
        assert base_name("/") == ""


@pytest.fixture
def tree():
    return DirectoryTree()


class TestDirectoryTree:
    def test_root_exists(self, tree):
        assert tree.is_dir("/") and tree.exists("/")

    def test_add_file_creates_parents(self, tree):
        tree.add_file("/a/b/c.txt", "h1")
        assert tree.is_dir("/a") and tree.is_dir("/a/b")
        assert tree.is_file("/a/b/c.txt")
        assert tree.handle("/a/b/c.txt") == "h1"

    def test_duplicate_file_rejected(self, tree):
        tree.add_file("/x", "h")
        with pytest.raises(FileAlreadyExists):
            tree.add_file("/x", "h2")

    def test_file_over_dir_rejected(self, tree):
        tree.make_dirs("/d")
        with pytest.raises(FileAlreadyExists):
            tree.add_file("/d", "h")

    def test_dir_through_file_rejected(self, tree):
        tree.add_file("/f", "h")
        with pytest.raises(NotADirectory):
            tree.make_dirs("/f/sub")
        with pytest.raises(NotADirectory):
            tree.add_file("/f/child", "h2")

    def test_handle_of_dir_rejected(self, tree):
        tree.make_dirs("/d")
        with pytest.raises(IsADirectory):
            tree.handle("/d")

    def test_handle_missing(self, tree):
        with pytest.raises(FileNotFound):
            tree.handle("/ghost")

    def test_list_dir(self, tree):
        tree.add_file("/a/one", 1)
        tree.add_file("/a/two", 2)
        tree.make_dirs("/a/subdir")
        tree.add_file("/a/subdir/deep", 3)
        assert tree.list_dir("/a") == ["/a/one", "/a/subdir", "/a/two"]

    def test_list_file_rejected(self, tree):
        tree.add_file("/f", 1)
        with pytest.raises(NotADirectory):
            tree.list_dir("/f")

    def test_list_missing_rejected(self, tree):
        with pytest.raises(FileNotFound):
            tree.list_dir("/nope")

    def test_iter_files_recursive(self, tree):
        tree.add_file("/a/1", 1)
        tree.add_file("/a/b/2", 2)
        tree.add_file("/c/3", 3)
        assert list(tree.iter_files("/a")) == ["/a/1", "/a/b/2"]
        assert list(tree.iter_files()) == ["/a/1", "/a/b/2", "/c/3"]

    def test_set_handle(self, tree):
        tree.add_file("/f", 1)
        tree.set_handle("/f", 2)
        assert tree.handle("/f") == 2
        with pytest.raises(FileNotFound):
            tree.set_handle("/ghost", 1)


class TestRemove:
    def test_remove_file_returns_handle(self, tree):
        tree.add_file("/f", "h")
        assert tree.remove("/f") == ["h"]
        assert not tree.exists("/f")

    def test_remove_empty_dir(self, tree):
        tree.make_dirs("/d")
        assert tree.remove("/d") == []
        assert not tree.exists("/d")

    def test_remove_nonempty_needs_recursive(self, tree):
        tree.add_file("/d/f", "h")
        with pytest.raises(DirectoryNotEmpty):
            tree.remove("/d")
        assert sorted(tree.remove("/d", recursive=True)) == ["h"]
        assert not tree.exists("/d") and not tree.exists("/d/f")

    def test_remove_root_refused(self, tree):
        with pytest.raises(ValueError):
            tree.remove("/")

    def test_remove_missing(self, tree):
        with pytest.raises(FileNotFound):
            tree.remove("/ghost")


class TestRename:
    def test_rename_file(self, tree):
        tree.add_file("/a/f", "h")
        tree.rename("/a/f", "/b/g")
        assert tree.handle("/b/g") == "h"
        assert not tree.exists("/a/f")

    def test_rename_subtree(self, tree):
        tree.add_file("/src/x/1", 1)
        tree.add_file("/src/2", 2)
        tree.rename("/src", "/dst")
        assert tree.handle("/dst/x/1") == 1
        assert tree.handle("/dst/2") == 2
        assert not tree.exists("/src")

    def test_rename_onto_existing_rejected(self, tree):
        tree.add_file("/a", 1)
        tree.add_file("/b", 2)
        with pytest.raises(FileAlreadyExists):
            tree.rename("/a", "/b")

    def test_rename_into_self_rejected(self, tree):
        tree.make_dirs("/a")
        with pytest.raises(ValueError):
            tree.rename("/a", "/a/b")

    def test_rename_missing_rejected(self, tree):
        with pytest.raises(FileNotFound):
            tree.rename("/ghost", "/x")
