"""End-to-end tests of BSFS (the paper's §IV layer)."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem
from repro.errors import FileAlreadyExists, FileNotFound, IsADirectory

BS = 64


@pytest.fixture
def fs():
    return BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=6, metadata_providers=2, block_size=BS))
    )


class TestBasicIO:
    def test_write_read_roundtrip(self, fs):
        fs.write_file("/data/file.txt", b"hello bsfs")
        assert fs.read_file("/data/file.txt") == b"hello bsfs"

    def test_multi_block_file(self, fs):
        data = bytes(i % 256 for i in range(5 * BS + 17))
        fs.write_file("/big", data)
        assert fs.read_file("/big") == data
        assert fs.status("/big").size == len(data)

    def test_streaming_small_writes(self, fs):
        with fs.create("/stream") as out:
            for i in range(100):
                out.write(bytes([i % 251]) * 7)
        expected = b"".join(bytes([i % 251]) * 7 for i in range(100))
        assert fs.read_file("/stream") == expected

    def test_write_batching_into_blocks(self, fs):
        """§IV-B: commits happen per block, not per client write."""
        stream = fs.create("/batched")
        for _ in range(2 * BS // 4):
            stream.write(b"q" * 4)
        blob = fs.blob_of("/batched")
        assert fs.store.latest_version(blob) == 2  # exactly 2 block commits
        stream.close()
        assert fs.store.latest_version(blob) == 2  # nothing left to flush

    def test_empty_file(self, fs):
        fs.write_file("/empty", b"")
        assert fs.read_file("/empty") == b""
        assert fs.status("/empty").size == 0

    def test_sequential_and_positional_reads(self, fs):
        data = bytes(i % 256 for i in range(3 * BS))
        fs.write_file("/f", data)
        with fs.open("/f") as stream:
            assert stream.read(10) == data[:10]
            assert stream.read(10) == data[10:20]
            assert stream.pread(BS, 5) == data[BS : BS + 5]
            assert stream.read(10) == data[20:30]  # cursor unaffected
            stream.seek(2 * BS)
            assert stream.read() == data[2 * BS :]

    def test_read_prefetches_whole_blocks(self, fs):
        data = bytes(2 * BS)
        fs.write_file("/f", data)
        with fs.open("/f") as stream:
            for i in range(BS // 4):
                stream.read(4)
            assert stream.prefetches == 1


class TestAppend:
    def test_append_block_aligned(self, fs):
        fs.write_file("/log", b"a" * BS)
        with fs.append("/log") as out:
            out.write(b"b" * BS)
        assert fs.read_file("/log") == b"a" * BS + b"b" * BS

    def test_append_to_unaligned_file_rmw(self, fs):
        fs.write_file("/log", b"a" * 10)
        with fs.append("/log") as out:
            out.write(b"b" * 5)
        assert fs.read_file("/log") == b"a" * 10 + b"b" * 5

    def test_append_many_times(self, fs):
        fs.write_file("/log", b"")
        expected = b""
        for i in range(5):
            chunk = bytes([i]) * (BS // 2 + i)
            with fs.append("/log") as out:
                out.write(chunk)
            expected += chunk
        assert fs.read_file("/log") == expected

    def test_append_missing_file(self, fs):
        with pytest.raises(FileNotFound):
            fs.append("/ghost")


class TestVersioning:
    def test_reader_pinned_against_appends(self, fs):
        """A BSFS reader sees an immutable snapshot while writers append."""
        fs.write_file("/f", b"1" * BS)
        reader = fs.open("/f")
        with fs.append("/f") as out:
            out.write(b"2" * BS)
        assert reader.size == BS
        assert reader.read() == b"1" * BS
        assert fs.status("/f").size == 2 * BS

    def test_open_past_version(self, fs):
        fs.write_file("/f", b"1" * BS)
        with fs.append("/f") as out:
            out.write(b"2" * BS)
        old = fs.open("/f", version=1)
        assert old.read() == b"1" * BS

    def test_file_versions_counter(self, fs):
        fs.write_file("/f", b"1" * (3 * BS))
        assert fs.file_versions("/f") == 1
        with fs.append("/f") as out:
            out.write(b"2" * BS)
        assert fs.file_versions("/f") == 2


class TestNamespace:
    def test_create_existing_rejected(self, fs):
        fs.write_file("/x", b"1")
        with pytest.raises(FileAlreadyExists):
            fs.create("/x")

    def test_missing_file(self, fs):
        with pytest.raises(FileNotFound):
            fs.open("/nope")
        with pytest.raises(FileNotFound):
            fs.status("/nope")

    def test_mkdir_list_delete(self, fs):
        fs.make_dirs("/a/b")
        fs.write_file("/a/b/f1", b"x")
        fs.write_file("/a/f2", b"y")
        assert fs.list_dir("/a") == ["/a/b", "/a/f2"]
        assert fs.exists("/a/b/f1")
        fs.delete("/a", recursive=True)
        assert not fs.exists("/a")

    def test_rename(self, fs):
        fs.write_file("/old", b"content")
        fs.rename("/old", "/new/place")
        assert fs.read_file("/new/place") == b"content"
        assert not fs.exists("/old")

    def test_status_dir(self, fs):
        fs.make_dirs("/d")
        status = fs.status("/d")
        assert status.is_dir and status.size == 0


class TestBlockLocations:
    def test_locations_reflect_round_robin(self, fs):
        fs.write_file("/f", bytes(4 * BS))
        locations = fs.block_locations("/f", 0, 4 * BS)
        assert len(locations) == 4
        assert len({l.hosts[0] for l in locations}) == 4  # spread out

    def test_locations_subrange(self, fs):
        fs.write_file("/f", bytes(4 * BS))
        locations = fs.block_locations("/f", BS, 2 * BS)
        assert [l.offset for l in locations] == [BS, 2 * BS]

    def test_locations_clamped_to_size(self, fs):
        fs.write_file("/f", bytes(BS + 5))
        locations = fs.block_locations("/f", 0, 10 * BS)
        assert sum(l.length for l in locations) == BS + 5

    def test_locations_on_dir_rejected(self, fs):
        fs.make_dirs("/d")
        with pytest.raises(IsADirectory):
            fs.block_locations("/d", 0, 1)

    def test_namespace_not_on_data_path(self, fs):
        """§IV-A: data ops don't touch the namespace manager."""
        fs.write_file("/f", bytes(4 * BS))
        with fs.open("/f") as stream:
            before = fs.namespace.requests
            stream.read()  # all data traffic
            assert fs.namespace.requests == before
