"""Tests for FS-level file branching (zero-copy dataset forks)."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem
from repro.errors import FileAlreadyExists, FileNotFound

BS = 64


@pytest.fixture
def fs():
    return BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=6, metadata_providers=2, block_size=BS))
    )


class TestBranchFile:
    def test_fork_shares_content(self, fs):
        fs.write_file("/data/main", b"m" * (3 * BS))
        fs.branch_file("/data/main", "/data/fork")
        assert fs.read_file("/data/fork") == fs.read_file("/data/main")

    def test_fork_evolves_independently(self, fs):
        fs.write_file("/main", b"m" * BS)
        fs.branch_file("/main", "/fork")
        with fs.append("/fork") as out:
            out.write(b"f" * BS)
        assert fs.status("/main").size == BS
        assert fs.status("/fork").size == 2 * BS
        assert fs.read_file("/main") == b"m" * BS

    def test_fork_at_old_version(self, fs):
        fs.write_file("/main", b"1" * BS)
        v1 = fs.file_versions("/main")
        with fs.append("/main") as out:
            out.write(b"2" * BS)
        fs.branch_file("/main", "/fork", version=v1)
        assert fs.read_file("/fork") == b"1" * BS

    def test_fork_is_zero_copy(self, fs):
        fs.write_file("/main", b"m" * (8 * BS))
        stored_before = sum(p.stored_bytes for p in fs.store.providers.values())
        fs.branch_file("/main", "/fork")
        stored_after = sum(p.stored_bytes for p in fs.store.providers.values())
        assert stored_after == stored_before

    def test_fork_onto_existing_path_rejected(self, fs):
        fs.write_file("/a", b"x")
        fs.write_file("/b", b"y")
        with pytest.raises(FileAlreadyExists):
            fs.branch_file("/a", "/b")

    def test_fork_missing_source_rejected(self, fs):
        with pytest.raises(FileNotFound):
            fs.branch_file("/ghost", "/fork")

    def test_forked_file_appendable_and_mapreduceable(self, fs):
        from repro.mapreduce import LocalJobRunner
        from repro.mapreduce.apps import grep_job

        fs.write_file("/logs", b"needle\nhay\n" * 50)
        fs.branch_file("/logs", "/experiment")
        with fs.append("/experiment") as out:
            out.write(b"needle extra\n" * 10)
        result = LocalJobRunner(fs).run(grep_job(["/experiment"], "/out", "needle"))
        count = int(fs.read_file(result.output_paths[0]).split(b"\t")[1])
        assert count == 60
        # The original is untouched by the experiment.
        result2 = LocalJobRunner(fs).run(grep_job(["/logs"], "/out2", "needle"))
        assert int(fs.read_file(result2.output_paths[0]).split(b"\t")[1]) == 50
