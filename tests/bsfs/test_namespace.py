"""Tests for the BSFS namespace manager (§IV-A)."""

import pytest

from repro.bsfs import NamespaceManager
from repro.errors import FileAlreadyExists, FileNotFound


@pytest.fixture
def ns():
    return NamespaceManager()


class TestFileMapping:
    def test_register_and_lookup(self, ns):
        ns.register_file("/a/b", "blob-1")
        assert ns.lookup("/a/b").blob_id == "blob-1"

    def test_parents_autocreated(self, ns):
        ns.register_file("/deep/path/file", "b")
        assert ns.is_dir("/deep") and ns.is_dir("/deep/path")

    def test_duplicate_rejected(self, ns):
        ns.register_file("/f", "b1")
        with pytest.raises(FileAlreadyExists):
            ns.register_file("/f", "b2")

    def test_lookup_missing(self, ns):
        with pytest.raises(FileNotFound):
            ns.lookup("/ghost")

    def test_delete_returns_blob_ids(self, ns):
        ns.register_file("/d/1", "b1")
        ns.register_file("/d/2", "b2")
        assert sorted(ns.delete("/d", recursive=True)) == ["b1", "b2"]
        assert not ns.exists("/d")

    def test_rename_preserves_binding(self, ns):
        ns.register_file("/old", "b")
        ns.rename("/old", "/new")
        assert ns.lookup("/new").blob_id == "b"

    def test_iter_files(self, ns):
        ns.register_file("/x/1", "a")
        ns.register_file("/x/y/2", "b")
        ns.register_file("/z", "c")
        assert ns.iter_files("/x") == ["/x/1", "/x/y/2"]


class TestRequestAccounting:
    def test_every_operation_counted(self, ns):
        """The §IV-A design goal is *minimizing* traffic to this
        centralized entity — the counter is how tests observe it."""
        before = ns.requests
        ns.register_file("/f", "b")
        ns.lookup("/f")
        ns.exists("/f")
        ns.is_file("/f")
        ns.list_dir("/")
        assert ns.requests == before + 5

    def test_status_of_builds_without_counting(self, ns):
        ns.register_file("/f", "b")
        before = ns.requests
        status = ns.status_of("/f", size=123)
        assert status.size == 123 and status.is_file
        assert ns.requests == before
