"""Tests for the §V-F concurrent-copy utility."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem
from repro.bsfs.tools import concurrent_copy
from repro.errors import FileSystemError

BS = 64


@pytest.fixture
def fs():
    return BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=8, metadata_providers=3, block_size=BS))
    )


class TestConcurrentCopy:
    def test_copy_exact_bytes(self, fs):
        data = bytes(i % 251 for i in range(7 * BS + 13))
        fs.write_file("/src", data)
        report = concurrent_copy(fs, "/src", "/dst", workers=3)
        assert fs.read_file("/dst") == data
        assert report.bytes_copied == len(data)
        assert report.slices == 3

    def test_threaded_copy_exact_bytes(self, fs):
        data = bytes(i % 249 for i in range(9 * BS + 5))
        fs.write_file("/src", data)
        concurrent_copy(fs, "/src", "/dst", workers=4, threaded=True)
        assert fs.read_file("/dst") == data

    def test_single_worker(self, fs):
        data = b"q" * (2 * BS)
        fs.write_file("/src", data)
        report = concurrent_copy(fs, "/src", "/dst", workers=1)
        assert report.slices == 1
        assert fs.read_file("/dst") == data

    def test_more_workers_than_blocks(self, fs):
        data = b"w" * BS
        fs.write_file("/src", data)
        report = concurrent_copy(fs, "/src", "/dst", workers=8)
        assert report.slices == 1  # clamped to available blocks
        assert fs.read_file("/dst") == data

    def test_empty_file(self, fs):
        fs.write_file("/src", b"")
        report = concurrent_copy(fs, "/src", "/dst", workers=4)
        assert report.bytes_copied == 0
        assert fs.read_file("/dst") == b""

    def test_copy_pins_source_snapshot(self, fs):
        """Appends racing with the copy never corrupt the destination."""
        data = b"s" * (4 * BS)
        fs.write_file("/src", data)
        # Interleave: open pins the snapshot inside concurrent_copy, so
        # even an append *before* the copy's reads land is invisible.
        source_reader = fs.open("/src")
        with fs.append("/src") as out:
            out.write(b"late" * BS)
        assert source_reader.size == 4 * BS
        concurrent_copy(fs, "/src", "/dst", workers=2)
        # The copy ran after the append; it copies the *latest published*
        # snapshot at its own open time — still a consistent snapshot.
        assert fs.read_file("/dst") == fs.read_file("/src")

    def test_copy_directory_rejected(self, fs):
        fs.make_dirs("/d")
        with pytest.raises(FileSystemError):
            concurrent_copy(fs, "/d", "/dst")

    def test_workers_validation(self, fs):
        fs.write_file("/src", b"x")
        with pytest.raises(ValueError):
            concurrent_copy(fs, "/src", "/dst", workers=0)

    def test_destination_versions_reflect_slice_writes(self, fs):
        data = b"v" * (6 * BS)
        fs.write_file("/src", data)
        concurrent_copy(fs, "/src", "/dst", workers=3)
        # 3 slices -> 3 destination snapshots; all published.
        assert fs.file_versions("/dst") == 3
