"""Tests for the §IV-B client caching mechanisms."""

import pytest

from repro.bsfs import BlockReadCache, WriteBuffer
from repro.errors import InvalidRange

BS = 64


class TestBlockReadCache:
    def make(self, data: bytes, capacity=2):
        fetched = []

        def fetch(index):
            fetched.append(index)
            return data[index * BS : (index + 1) * BS]

        cache = BlockReadCache(fetch, block_size=BS, file_size=len(data), capacity=capacity)
        return cache, fetched

    def test_small_reads_hit_one_prefetch(self):
        """4 KB-style reads cause exactly one backend fetch per block."""
        data = bytes(i % 256 for i in range(2 * BS))
        cache, fetched = self.make(data)
        out = b"".join(cache.pread(i * 4, 4) for i in range(BS // 4))
        assert out == data[:BS]
        assert fetched == [0]

    def test_cross_block_read(self):
        data = bytes(i % 256 for i in range(3 * BS))
        cache, fetched = self.make(data)
        assert cache.pread(BS - 5, 10) == data[BS - 5 : BS + 5]
        assert fetched == [0, 1]

    def test_lru_eviction(self):
        data = bytes(3 * BS)
        cache, fetched = self.make(data, capacity=1)
        cache.pread(0, 1)
        cache.pread(BS, 1)
        cache.pread(0, 1)  # block 0 was evicted -> refetch
        assert fetched == [0, 1, 0]

    def test_trailing_short_block(self):
        data = bytes(BS + 10)
        cache, _ = self.make(data)
        assert cache.pread(BS, 10) == data[BS:]

    def test_bounds_checked(self):
        data = bytes(BS)
        cache, _ = self.make(data)
        with pytest.raises(InvalidRange):
            cache.pread(0, BS + 1)
        with pytest.raises(InvalidRange):
            cache.pread(-1, 1)

    def test_zero_read(self):
        cache, fetched = self.make(bytes(BS))
        assert cache.pread(10, 0) == b""
        assert fetched == []

    def test_backend_size_mismatch_detected(self):
        cache = BlockReadCache(lambda i: b"short", block_size=BS, file_size=BS)
        with pytest.raises(InvalidRange, match="expected"):
            cache.pread(0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockReadCache(lambda i: b"", block_size=0, file_size=0)
        with pytest.raises(ValueError):
            BlockReadCache(lambda i: b"", block_size=1, file_size=-1)
        with pytest.raises(ValueError):
            BlockReadCache(lambda i: b"", block_size=1, file_size=0, capacity=0)


class TestWriteBuffer:
    def make(self, committed=0, tail=b""):
        commits = []
        buffer = WriteBuffer(
            commit=lambda off, data: commits.append((off, data)),
            block_size=BS,
            committed=committed,
            initial_tail=tail,
        )
        return buffer, commits

    def test_small_writes_batch_into_blocks(self):
        """The §IV-B behaviour: 4 KB writes commit only at block fill."""
        buffer, commits = self.make()
        for _ in range(BS // 4 - 1):
            buffer.write(b"x" * 4)
        assert commits == []  # not a full block yet
        buffer.write(b"x" * 4)
        assert commits == [(0, b"x" * BS)]

    def test_multi_block_write_commits_together(self):
        buffer, commits = self.make()
        buffer.write(b"y" * (3 * BS + 7))
        assert commits == [(0, b"y" * (3 * BS))]
        assert buffer.size == 3 * BS + 7

    def test_close_flushes_partial(self):
        buffer, commits = self.make()
        buffer.write(b"z" * 10)
        assert buffer.close() == 10
        assert commits == [(0, b"z" * 10)]

    def test_close_empty_commits_nothing(self):
        buffer, commits = self.make()
        assert buffer.close() == 0
        assert commits == []

    def test_close_idempotent(self):
        buffer, commits = self.make()
        buffer.write(b"a" * 5)
        buffer.close()
        buffer.close()
        assert len(commits) == 1

    def test_write_after_close_rejected(self):
        buffer, _ = self.make()
        buffer.close()
        with pytest.raises(ValueError):
            buffer.write(b"x")

    def test_resume_with_tail_rewrites_merged_block(self):
        """The append-to-unaligned-file path: tail + new data at the
        aligned offset."""
        buffer, commits = self.make(committed=2 * BS, tail=b"t" * 10)
        buffer.write(b"n" * (BS - 10))
        assert commits == [(2 * BS, b"t" * 10 + b"n" * (BS - 10))]
        assert buffer.size == 3 * BS

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteBuffer(lambda o, d: None, block_size=0)
        with pytest.raises(ValueError):
            WriteBuffer(lambda o, d: None, block_size=BS, committed=10)
        with pytest.raises(ValueError):
            WriteBuffer(lambda o, d: None, block_size=BS, initial_tail=b"x" * BS)
