"""Read-ahead prefetching in the §IV-B block cache.

With a parallel I/O engine attached, :class:`BlockReadCache` overlaps
the fetch of the *next* blocks with the client consuming the current
one — Hadoop's strictly sequential record readers turn that into a
latency-hiding pipeline.
"""

import threading
import time

import pytest

from repro.blob.io_engine import ParallelIOEngine
from repro.bsfs import BlockReadCache

BS = 64


@pytest.fixture
def engine():
    with ParallelIOEngine(2) as eng:
        yield eng


def make(data, engine, readahead, capacity=4, delay=0.0):
    fetched = []
    lock = threading.Lock()

    def fetch(index):
        if delay:
            time.sleep(delay)
        with lock:
            fetched.append(index)
        return data[index * BS : (index + 1) * BS]

    cache = BlockReadCache(
        fetch,
        block_size=BS,
        file_size=len(data),
        capacity=capacity,
        engine=engine,
        readahead=readahead,
    )
    return cache, fetched


class TestReadAhead:
    def test_sequential_read_is_correct_and_prefetches_ahead(self, engine):
        data = bytes(i % 256 for i in range(6 * BS))
        cache, fetched = make(data, engine, readahead=2)
        out = b"".join(cache.pread(i * 4, 4) for i in range(len(data) // 4))
        assert out == data
        # Every block was fetched from the backend exactly once.
        assert sorted(fetched) == list(range(6))
        assert cache.fetches == 6

    def test_prefetch_does_not_run_past_the_file(self, engine):
        data = bytes(2 * BS + 10)  # trailing short block
        cache, fetched = make(data, engine, readahead=4)
        assert cache.pread(0, len(data)) == data
        assert sorted(set(fetched)) == [0, 1, 2]

    def test_readahead_hides_backend_latency(self, engine):
        delay = 0.01
        data = bytes(8 * BS)
        cache, _ = make(data, engine, readahead=2, delay=delay)
        start = time.perf_counter()
        for i in range(8):
            cache.pread(i * BS, BS)
            time.sleep(delay)  # the client "processing" each block
        elapsed = time.perf_counter() - start
        # Serial would be >= 16 * delay (8 fetches + 8 processing
        # steps); the pipeline overlaps fetch with processing, landing
        # near 9 * delay — the 14x bound leaves ~50ms of slack for
        # sleep() overshoot on a loaded CI runner.
        assert elapsed < 14 * delay

    def test_readahead_requires_engine(self):
        with pytest.raises(ValueError):
            BlockReadCache(lambda i: b"", block_size=BS, file_size=0, readahead=1)

    def test_zero_readahead_with_engine_stays_synchronous(self, engine):
        data = bytes(3 * BS)
        cache, fetched = make(data, engine, readahead=0)
        cache.pread(0, 1)
        assert fetched == [0]

    def test_transient_prefetch_failure_retries_inline(self, engine):
        # A prefetch that failed in the background (provider flapping)
        # must not poison the read: consuming the block retries inline.
        data = bytes(i % 256 for i in range(4 * BS))
        failed_once = []
        lock = threading.Lock()

        def flaky_fetch(index):
            with lock:
                if index == 1 and not failed_once:
                    failed_once.append(index)
                    raise ConnectionError("replica's provider flapped")
            return data[index * BS : (index + 1) * BS]

        cache = BlockReadCache(
            flaky_fetch,
            block_size=BS,
            file_size=len(data),
            capacity=4,
            engine=engine,
            readahead=1,
        )
        assert cache.pread(0, len(data)) == data
        assert failed_once == [1]

    def test_random_access_does_not_amplify_fetches(self, engine):
        data = bytes(10 * BS)
        cache, fetched = make(data, engine, readahead=2)
        cache.pread(0, 1)  # sequential start: may prefetch 1, 2
        cache.pread(5 * BS, 1)  # seek: must NOT prefetch 6, 7
        assert cache.pread(6 * BS, 1) == b"\0"  # sequential again: may prefetch 7, 8
        assert not {3, 4, 9} & set(fetched)
        assert set(fetched) <= {0, 1, 2, 5, 6, 7, 8}

    def test_fetch_counter_uncounts_cancelled_prefetches(self, engine):
        # Prefetches cancelled on a seek never hit the backend and
        # must not inflate the cache-miss counter.
        data = bytes(30 * BS)
        cache, fetched = make(data, engine, readahead=4, delay=0.005)
        cache.pread(0, 1)  # prefetch 1..4 submitted on a 2-thread pool
        cache.pread(20 * BS, 1)  # seek: queued prefetches cancelled
        import time as _time

        _time.sleep(0.05)  # let any in-flight fetch land
        assert cache.fetches == len(fetched)
