"""End-to-end tests of the HDFS baseline (paper §II-B semantics)."""

import pytest

from repro.errors import (
    AppendNotSupported,
    FileAlreadyExists,
    FileNotFound,
    LeaseConflict,
    ProviderUnavailable,
)
from repro.hdfs import HDFSFileSystem

BS = 64


@pytest.fixture
def fs():
    return HDFSFileSystem(datanodes=6, block_size=BS, seed=7)


class TestBasicIO:
    def test_roundtrip(self, fs):
        fs.write_file("/data/f", b"hello hdfs")
        assert fs.read_file("/data/f") == b"hello hdfs"

    def test_multi_chunk_file(self, fs):
        data = bytes(i % 256 for i in range(5 * BS + 9))
        fs.write_file("/big", data)
        assert fs.read_file("/big") == data
        assert fs.status("/big").size == len(data)

    def test_chunks_land_on_datanodes(self, fs):
        fs.write_file("/f", bytes(4 * BS))
        assert sum(fs.datanode_chunk_counts().values()) == 4

    def test_streamed_writes(self, fs):
        with fs.create("/s") as out:
            for i in range(50):
                out.write(bytes([i % 256]) * 5)
        assert len(fs.read_file("/s")) == 250

    def test_positional_reads(self, fs):
        data = bytes(i % 256 for i in range(3 * BS))
        fs.write_file("/f", data)
        with fs.open("/f") as stream:
            assert stream.pread(BS + 3, 7) == data[BS + 3 : BS + 10]
            stream.seek(2 * BS)
            assert stream.read() == data[2 * BS :]

    def test_reads_prefetch_whole_chunks(self, fs):
        fs.write_file("/f", bytes(2 * BS))
        with fs.open("/f") as stream:
            for _ in range(BS // 4):
                stream.read(4)
            assert stream.prefetches == 1


class TestHdfsSemantics:
    def test_no_append(self, fs):
        """§V-F: HDFS does not implement append."""
        fs.write_file("/f", b"x")
        with pytest.raises(AppendNotSupported):
            fs.append("/f")

    def test_single_writer_lease(self, fs):
        fs.create("/f", client="w1")
        with pytest.raises(LeaseConflict):
            fs.create("/f", client="w2")

    def test_write_once(self, fs):
        fs.write_file("/f", b"first")
        with pytest.raises(FileAlreadyExists):
            fs.create("/f")

    def test_delete_leased_file_rejected(self, fs):
        fs.create("/f", client="w")
        with pytest.raises(LeaseConflict):
            fs.delete("/f")

    def test_rename_leased_file_rejected(self, fs):
        fs.create("/f", client="w")
        with pytest.raises(LeaseConflict):
            fs.rename("/f", "/g")

    def test_local_first_placement(self, fs):
        """A writer colocated with a datanode stores everything locally
        — the pathological §V-E layout."""
        fs.write_file("/local", bytes(6 * BS), client="datanode-002")
        counts = fs.datanode_chunk_counts()
        assert counts["datanode-002"] == 6
        assert sum(counts.values()) == 6

    def test_remote_client_spreads_randomly(self, fs):
        fs.write_file("/remote", bytes(12 * BS), client="edge-node")
        counts = fs.datanode_chunk_counts()
        assert max(counts.values()) < 12  # not all on one node
        assert sum(counts.values()) == 12


class TestNamespace:
    def test_missing_file(self, fs):
        with pytest.raises(FileNotFound):
            fs.open("/nope")

    def test_mkdir_list_rename_delete(self, fs):
        fs.make_dirs("/a/b")
        fs.write_file("/a/f", b"1")
        assert fs.list_dir("/a") == ["/a/b", "/a/f"]
        fs.rename("/a/f", "/a/g")
        assert fs.exists("/a/g")
        fs.delete("/a", recursive=True)
        assert not fs.exists("/a")

    def test_delete_frees_datanode_chunks(self, fs):
        fs.write_file("/f", bytes(4 * BS))
        assert sum(fs.datanode_chunk_counts().values()) == 4
        fs.delete("/f")
        assert sum(fs.datanode_chunk_counts().values()) == 0


class TestReplicationFailover:
    def test_replicated_pipeline(self):
        fs = HDFSFileSystem(datanodes=5, block_size=BS, replication=3, seed=1)
        fs.write_file("/f", bytes(2 * BS))
        assert sum(fs.datanode_chunk_counts().values()) == 6
        locations = fs.block_locations("/f", 0, 2 * BS)
        for loc in locations:
            assert len(set(loc.hosts)) == 3

    def test_read_failover(self):
        fs = HDFSFileSystem(datanodes=5, block_size=BS, replication=2, seed=1)
        fs.write_file("/f", b"r" * BS)
        primary = fs.block_locations("/f", 0, BS)[0].hosts[0]
        fs.fail_datanode(primary)
        assert fs.read_file("/f") == b"r" * BS

    def test_unreplicated_loss(self, fs):
        fs.write_file("/f", b"r" * BS)
        primary = fs.block_locations("/f", 0, BS)[0].hosts[0]
        fs.fail_datanode(primary)
        with pytest.raises(ProviderUnavailable):
            fs.read_file("/f")

    def test_failed_datanode_excluded_from_placement(self, fs):
        fs.fail_datanode("datanode-000")
        fs.write_file("/f", bytes(12 * BS), client="edge")
        assert fs.datanode_chunk_counts()["datanode-000"] == 0


class TestBlockLocations:
    def test_chunk_layout_exposed(self, fs):
        """The namenode answers the scheduler's affinity query."""
        fs.write_file("/f", bytes(3 * BS), client="edge")
        locations = fs.block_locations("/f", 0, 3 * BS)
        assert len(locations) == 3
        assert [l.offset for l in locations] == [0, BS, 2 * BS]

    def test_subrange(self, fs):
        fs.write_file("/f", bytes(4 * BS))
        locations = fs.block_locations("/f", BS + 1, BS)
        assert len(locations) == 2
        assert locations[0].offset == BS + 1

    def test_every_metadata_op_hits_namenode(self, fs):
        """The centralized-metadata contrast with BSFS (§III-A.3)."""
        fs.write_file("/f", bytes(2 * BS))
        before = fs.namenode.requests
        fs.block_locations("/f", 0, 2 * BS)  # is_dir check + layout query
        fs.status("/f")
        fs.exists("/f")
        assert fs.namenode.requests == before + 4
