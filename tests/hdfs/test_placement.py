"""Unit tests for the HDFS placement policy (incl. calibrated reuse)."""

import numpy as np
import pytest

from repro.errors import ReplicationError
from repro.hdfs import HdfsPlacementPolicy

NODES = [f"dn{i}" for i in range(20)]


def policy(reuse=1, seed=0):
    return HdfsPlacementPolicy(rng=np.random.default_rng(seed), target_reuse=reuse)


class TestLocalFirst:
    def test_client_on_datanode_wins(self):
        p = policy()
        for _ in range(5):
            assert p.choose_pipeline(NODES, 1, client="dn7")[0] == "dn7"

    def test_remote_client_random(self):
        p = policy(seed=3)
        picks = {p.choose_pipeline(NODES, 1, client="edge")[0] for _ in range(40)}
        assert len(picks) > 5

    def test_local_first_beats_reuse(self):
        """A colocated client always writes locally, reuse or not."""
        p = policy(reuse=5)
        p.choose_pipeline(NODES, 1, client=None)  # start a reuse run
        assert p.choose_pipeline(NODES, 1, client="dn3")[0] == "dn3"


class TestTargetReuse:
    def test_runs_of_exact_length(self):
        p = policy(reuse=4, seed=1)
        primaries = [p.choose_pipeline(NODES, 1, client=None)[0] for _ in range(12)]
        assert primaries[0:4].count(primaries[0]) == 4
        assert primaries[4:8].count(primaries[4]) == 4
        assert primaries[8:12].count(primaries[8]) == 4

    def test_reuse_one_is_independent(self):
        p = policy(reuse=1, seed=2)
        primaries = [p.choose_pipeline(NODES, 1, client=None)[0] for _ in range(60)]
        runs = sum(1 for a, b in zip(primaries, primaries[1:]) if a == b)
        # Independent uniform over 20 nodes: same-as-previous ~5%.
        assert runs < 12

    def test_dead_target_ends_run(self):
        p = policy(reuse=10, seed=4)
        first = p.choose_pipeline(NODES, 1, client=None)[0]
        live = [n for n in NODES if n != first]
        replacement = p.choose_pipeline(live, 1, client=None)[0]
        assert replacement != first

    def test_validation(self):
        with pytest.raises(ValueError):
            HdfsPlacementPolicy(target_reuse=0)


class TestPipelines:
    def test_replicas_distinct(self):
        p = policy(seed=5)
        for _ in range(20):
            pipeline = p.choose_pipeline(NODES, 3, client=None)
            assert len(set(pipeline)) == 3

    def test_replication_bounds(self):
        p = policy()
        with pytest.raises(ReplicationError):
            p.choose_pipeline(NODES[:2], 3, client=None)
        with pytest.raises(ValueError):
            p.choose_pipeline(NODES, 0, client=None)
