"""The CI benchmark regression gate must gate (tools/bench_compare.py).

A gate that silently checks nothing is worse than no gate: these tests
pin the failure contract — a >threshold regression fails, a benchmark
missing from the current run fails, an empty intersection with the
baseline fails — and the pass contract, including the median
normalization that keeps uniformly-slower CI runners green.
"""

import importlib.util
import json
import sys
from pathlib import Path

TOOL = Path(__file__).resolve().parents[2] / "tools" / "bench_compare.py"
spec = importlib.util.spec_from_file_location("bench_compare", TOOL)
bench_compare = importlib.util.module_from_spec(spec)
sys.modules["bench_compare"] = bench_compare
spec.loader.exec_module(bench_compare)


BASE = {
    "test_fig3a_single_writer": 1.0,
    "test_fig4_concurrent_reads": 2.0,
    "test_fig5_concurrent_appends": 0.5,
}


def test_identical_run_passes():
    lines, failed = bench_compare.compare(BASE, BASE, 0.25, normalize=True)
    assert failed == []


def test_single_regression_fails():
    current = dict(BASE, test_fig4_concurrent_reads=2.0 * 1.30)
    lines, failed = bench_compare.compare(current, BASE, 0.25, normalize=True)
    assert failed == ["test_fig4_concurrent_reads"]


def test_uniformly_slower_machine_passes_with_normalization():
    current = {name: mean * 1.3 for name, mean in BASE.items()}
    _, failed = bench_compare.compare(current, BASE, 0.25, normalize=True)
    assert failed == []
    _, failed_raw = bench_compare.compare(current, BASE, 0.25, normalize=False)
    assert sorted(failed_raw) == sorted(BASE)  # raw mode does flag it


def test_extreme_uniform_slowdown_trips_the_drift_bound():
    # Normalization is bounded: past --max-drift the gate refuses to
    # assume "slow machine" and fails for a human to look.
    current = {name: mean * 1.7 for name, mean in BASE.items()}
    _, failed = bench_compare.compare(current, BASE, 0.25, normalize=True)
    assert "<median-drift>" in failed


def test_missing_benchmark_fails_the_gate():
    current = {k: v for k, v in BASE.items() if k != "test_fig5_concurrent_appends"}
    _, failed = bench_compare.compare(current, BASE, 0.25, normalize=True)
    assert failed == ["test_fig5_concurrent_appends"]


def test_empty_intersection_fails_the_gate():
    _, failed = bench_compare.compare({"test_fig9_new": 1.0}, BASE, 0.25, True)
    assert failed  # renamed everything != nothing to check


def test_main_exit_codes_and_update(tmp_path):
    current_json = tmp_path / "bench.json"
    current_json.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"name": name, "stats": {"mean": mean}}
                    for name, mean in BASE.items()
                ]
            }
        )
    )
    baseline = tmp_path / "baseline.json"
    assert (
        bench_compare.main([str(current_json), "--baseline", str(baseline), "--update"])
        == 0
    )
    assert bench_compare.main([str(current_json), "--baseline", str(baseline)]) == 0

    slowed = json.loads(current_json.read_text())
    for bench in slowed["benchmarks"]:
        if bench["name"] == "test_fig4_concurrent_reads":
            bench["stats"]["mean"] *= 1.3
    current_json.write_text(json.dumps(slowed))
    assert bench_compare.main([str(current_json), "--baseline", str(baseline)]) == 1


def _write_run(path, means):
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"name": name, "stats": {"mean": mean}}
                    for name, mean in means.items()
                ]
            }
        )
    )


def test_write_baseline_stores_the_median_of_several_runs(tmp_path):
    # Middle run is the honest one; the outliers must cancel out.
    runs = []
    for i, factor in enumerate((0.5, 1.0, 3.0)):
        path = tmp_path / f"bench-{i}.json"
        _write_run(path, {name: mean * factor for name, mean in BASE.items()})
        runs.append(str(path))
    baseline = tmp_path / "baseline.json"
    assert (
        bench_compare.main(runs + ["--baseline", str(baseline), "--write-baseline"])
        == 0
    )
    stored = bench_compare.load_means(baseline, bench_compare.DEFAULT_PATTERN)
    assert stored == BASE  # factor 1.0 — the median run


def test_median_tolerates_a_partial_run():
    full = dict(BASE)
    partial = {k: v * 2 for k, v in BASE.items() if k != "test_fig5_concurrent_appends"}
    merged = bench_compare.median_means([full, partial])
    assert merged["test_fig5_concurrent_appends"] == BASE["test_fig5_concurrent_appends"]
    assert set(merged) == set(BASE)


def test_warn_only_reports_but_exits_zero(tmp_path):
    baseline = tmp_path / "baseline.json"
    bench_compare.write_baseline(baseline, BASE)
    current_json = tmp_path / "bench.json"
    _write_run(current_json, dict(BASE, test_fig4_concurrent_reads=2.0 * 1.5))
    args = [str(current_json), "--baseline", str(baseline)]
    assert bench_compare.main(args) == 1
    assert bench_compare.main(args + ["--warn-only"]) == 0


def test_multiple_runs_without_write_baseline_is_an_error(tmp_path):
    paths = []
    for i in range(2):
        path = tmp_path / f"bench-{i}.json"
        _write_run(path, BASE)
        paths.append(str(path))
    baseline = tmp_path / "baseline.json"
    bench_compare.write_baseline(baseline, BASE)
    assert bench_compare.main(paths + ["--baseline", str(baseline)]) == 1
