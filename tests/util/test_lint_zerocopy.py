"""The zero-copy hot-path lint must actually lint (tools/lint_zerocopy.py).

Pins the contract of the CI step guarding DESIGN.md §11: a stray
``.tobytes()`` or ``b"".join`` inside ``src/repro/blob/`` fails, the
``# zerocopy: allow`` escape hatch and comment/docstring occurrences do
not, and the real tree is currently clean.
"""

import importlib.util
import sys
from pathlib import Path

TOOL = Path(__file__).resolve().parents[2] / "tools" / "lint_zerocopy.py"
spec = importlib.util.spec_from_file_location("lint_zerocopy", TOOL)
lint_zerocopy = importlib.util.module_from_spec(spec)
sys.modules["lint_zerocopy"] = lint_zerocopy
spec.loader.exec_module(lint_zerocopy)


def write(tmp_path, name, text):
    (tmp_path / name).write_text(text)
    return tmp_path


def test_real_hot_path_is_clean():
    assert lint_zerocopy.lint() == []


def test_tobytes_violation_is_caught(tmp_path):
    write(tmp_path, "store.py", "data = payload.tobytes()\n")
    violations = lint_zerocopy.lint(tmp_path)
    assert len(violations) == 1
    assert "store.py:1" in violations[0]
    assert ".tobytes()" in violations[0]


def test_join_violation_is_caught(tmp_path):
    write(tmp_path, "store.py", 'out = b"".join(parts)\n')
    write(tmp_path, "other.py", "result = b'' . join(parts)\n")
    violations = lint_zerocopy.lint(tmp_path)
    assert len(violations) == 2


def test_allow_marker_and_comments_are_exempt(tmp_path):
    write(
        tmp_path,
        "store.py",
        "legacy = payload.tobytes()  # zerocopy: allow RPC boundary\n"
        "# dead = payload.tobytes()\n",
    )
    assert lint_zerocopy.lint(tmp_path) == []


def test_block_py_is_exempt(tmp_path):
    write(tmp_path, "block.py", "def tobytes(self): return bytes(self.data)\n")
    write(tmp_path, "block2.py", "x = p.tobytes()\n")
    violations = lint_zerocopy.lint(tmp_path)
    assert len(violations) == 1
    assert "block2.py" in violations[0]


def test_docstring_mentions_are_exempt(tmp_path):
    write(
        tmp_path,
        "store.py",
        '"""Module doc.\n\nNever call .tobytes() or b"".join here.\n"""\n'
        "x = 1\n",
    )
    assert lint_zerocopy.lint(tmp_path) == []
