"""Unit + property tests for block/range arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    align_down,
    align_up,
    block_count,
    block_span,
    iter_blocks,
    split_range,
)


class TestSplitRange:
    def test_empty_range(self):
        assert split_range(10, 0, 64) == []

    def test_single_full_block(self):
        (s,) = split_range(0, 64, 64)
        assert (s.index, s.start, s.length, s.offset) == (0, 0, 64, 0)

    def test_unaligned_extremal_blocks(self):
        # Paper §III-C: first/last blocks may be fetched partially.
        slices = split_range(10, 150, 64)
        assert [s.index for s in slices] == [0, 1, 2]
        assert slices[0].start == 10 and slices[0].length == 54
        assert slices[1].start == 0 and slices[1].length == 64
        assert slices[2].start == 0 and slices[2].length == 150 - 54 - 64

    def test_interior_blocks_full(self):
        slices = split_range(1, 64 * 3, 64)
        for s in slices[1:-1]:
            assert s.start == 0 and s.length == 64

    def test_offsets_are_absolute(self):
        slices = split_range(100, 200, 64)
        assert slices[0].offset == 100
        assert slices[-1].end == 300

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            split_range(0, 10, 0)

    def test_negative_range(self):
        with pytest.raises(ValueError):
            split_range(-1, 10, 64)
        with pytest.raises(ValueError):
            split_range(0, -10, 64)

    def test_iter_blocks_matches_split(self):
        assert list(iter_blocks(7, 1000, 64)) == split_range(7, 1000, 64)

    @given(
        offset=st.integers(min_value=0, max_value=10**7),
        size=st.integers(min_value=0, max_value=10**5),
        block=st.integers(min_value=16, max_value=10**5),
    )
    def test_property_cover_exactly(self, offset, size, block):
        """Slices tile the range exactly: contiguous, in order, summing to size."""
        slices = split_range(offset, size, block)
        assert sum(s.length for s in slices) == size
        position = offset
        for s in slices:
            assert s.offset == position
            assert 0 <= s.start < block
            assert 0 < s.length <= block - s.start
            assert s.index == s.offset // block
            position += s.length
        if size:
            assert position == offset + size


class TestBlockMath:
    def test_block_count(self):
        assert block_count(0, 64) == 0
        assert block_count(1, 64) == 1
        assert block_count(64, 64) == 1
        assert block_count(65, 64) == 2

    def test_block_span(self):
        assert block_span(0, 128, 64) == (0, 2)
        assert block_span(63, 2, 64) == (0, 2)
        assert block_span(64, 0, 64) == (1, 1)

    def test_span_matches_split(self):
        first, last = block_span(100, 999, 64)
        slices = split_range(100, 999, 64)
        assert slices[0].index == first
        assert slices[-1].index == last - 1

    def test_align(self):
        assert align_down(130, 64) == 128
        assert align_up(130, 64) == 192
        assert align_up(128, 64) == 128

    def test_align_bad_granularity(self):
        with pytest.raises(ValueError):
            align_down(1, 0)
        with pytest.raises(ValueError):
            align_up(1, -3)

    @given(
        value=st.integers(min_value=0, max_value=10**9),
        granularity=st.integers(min_value=1, max_value=10**6),
    )
    def test_property_align_bracket(self, value, granularity):
        low, high = align_down(value, granularity), align_up(value, granularity)
        assert low <= value <= high
        assert low % granularity == 0 and high % granularity == 0
        assert high - low in (0, granularity)
