"""The async-path lint must actually lint (tools/lint_async.py).

Pins the contract of the CI step guarding DESIGN.md §13: a blocking
``time.sleep``, sync DHT fan-out, ``_service_delay``, or ``.result()``
inside an ``async def`` under ``src/repro/`` fails; the same call in a
sync function, a nested sync ``def``, a comment, or a docstring does
not; the ``# asynclint: allow`` escape hatch works; and the real tree
is currently clean.
"""

import importlib.util
import sys
from pathlib import Path

TOOL = Path(__file__).resolve().parents[2] / "tools" / "lint_async.py"
spec = importlib.util.spec_from_file_location("lint_async", TOOL)
lint_async = importlib.util.module_from_spec(spec)
sys.modules["lint_async"] = lint_async
spec.loader.exec_module(lint_async)


def write(tmp_path, name, text):
    (tmp_path / name).write_text(text)
    return tmp_path


def test_real_tree_is_clean():
    assert lint_async.lint() == []


def test_time_sleep_in_a_coroutine_is_caught(tmp_path):
    write(
        tmp_path,
        "engine.py",
        "import time\n"
        "async def fetch(block):\n"
        "    time.sleep(0.01)\n"
        "    return block\n",
    )
    violations = lint_async.lint(tmp_path)
    assert len(violations) == 1
    assert "engine.py:3" in violations[0]
    assert "time.sleep" in violations[0]
    assert "asyncio.sleep" in violations[0]


def test_sync_dht_fanout_and_result_are_caught(tmp_path):
    write(
        tmp_path,
        "store.py",
        "async def publish(bucket, items, future):\n"
        "    bucket.put_many(items)\n"
        "    bucket.get_many([1])\n"
        "    bucket._service_delay()\n"
        "    future.result()\n",
    )
    violations = lint_async.lint(tmp_path)
    assert len(violations) == 4
    assert "aput_many" in violations[0]
    assert "aget_many" in violations[1]


def test_sync_functions_are_not_linted(tmp_path):
    write(
        tmp_path,
        "store.py",
        "import time\n"
        "def blocking_is_fine_here(bucket, future):\n"
        "    time.sleep(0.01)\n"
        "    bucket.get_many([1])\n"
        "    return future.result()\n",
    )
    assert lint_async.lint(tmp_path) == []


def test_nested_sync_def_inside_a_coroutine_is_exempt(tmp_path):
    # The engine's sanctioned shape: the coroutine builds a sync
    # closure (run off-loop or as the inline segment) — only calls
    # whose NEAREST enclosing function is async can park the loop.
    write(
        tmp_path,
        "engine.py",
        "import time\n"
        "async def outer(bucket):\n"
        "    def helper():\n"
        "        time.sleep(0.01)\n"
        "        return bucket.get_many([1])\n"
        "    return helper\n",
    )
    assert lint_async.lint(tmp_path) == []


def test_allow_marker_is_the_escape_hatch(tmp_path):
    write(
        tmp_path,
        "store.py",
        "async def aget_many(self, keys):\n"
        "    return self.get_many(keys)  # asynclint: allow delegation\n",
    )
    assert lint_async.lint(tmp_path) == []


def test_comments_and_docstrings_never_trip_the_ast_walk(tmp_path):
    write(
        tmp_path,
        "store.py",
        "async def fetch(block):\n"
        '    """Never call time.sleep(0.1) or bucket.get_many(keys)."""\n'
        "    # time.sleep(0.1) would block the loop\n"
        "    return block\n",
    )
    assert lint_async.lint(tmp_path) == []


def test_subdirectories_are_walked(tmp_path):
    (tmp_path / "dht").mkdir()
    write(
        tmp_path / "dht",
        "store.py",
        "async def f(b):\n    b.peek_many([1])\n",
    )
    violations = lint_async.lint(tmp_path)
    assert len(violations) == 1
    assert "store.py:2" in violations[0]
