"""Unit tests for statistics helpers (incl. the Figure 3(b) metric)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import harmonic_mean, layout_vector, manhattan_unbalance, summarize


class TestManhattanUnbalance:
    def test_perfectly_balanced_is_zero(self):
        assert manhattan_unbalance([3, 3, 3, 3]) == 0.0

    def test_empty_is_zero(self):
        assert manhattan_unbalance([]) == 0.0

    def test_known_value(self):
        # ideal = 2 each; distances 2,0,2 -> 4
        assert manhattan_unbalance([4, 2, 0]) == 4.0

    def test_single_hot_node(self):
        # Paper: HDFS may store a whole file on one datanode.
        n_nodes, blocks = 10, 100
        vec = [blocks] + [0] * (n_nodes - 1)
        ideal = blocks / n_nodes
        expected = (blocks - ideal) + ideal * (n_nodes - 1)
        assert manhattan_unbalance(vec) == pytest.approx(expected)

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=50))
    def test_property_nonnegative_and_shift_invariant(self, vec):
        d = manhattan_unbalance(vec)
        assert d >= 0
        # Adding the same constant to every element keeps the distance.
        assert manhattan_unbalance([v + 7 for v in vec]) == pytest.approx(d)

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=30))
    def test_property_balanced_is_minimum(self, vec):
        total = sum(vec)
        n = len(vec)
        balanced = [total // n] * n
        for i in range(total % n):
            balanced[i] += 1
        assert manhattan_unbalance(balanced) <= manhattan_unbalance(vec) + 1e-9


class TestLayoutVector:
    def test_from_mapping(self):
        vec = layout_vector({"a": 2, "b": 0}, nodes=["a", "b", "c"])
        assert vec == [2, 0, 0]

    def test_from_iterable(self):
        vec = layout_vector(["a", "a", "c"], nodes=["a", "b", "c"])
        assert vec == [2, 0, 1]

    def test_unknown_node_rejected(self):
        with pytest.raises(KeyError):
            layout_vector(["zz"], nodes=["a"])
        with pytest.raises(KeyError):
            layout_vector({"zz": 1}, nodes=["a"])

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            layout_vector({"a": -1}, nodes=["a"])


class TestSummaries:
    def test_summarize_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.stdev == pytest.approx(1.0)
        assert (s.minimum, s.maximum) == (1.0, 3.0)

    def test_summarize_single(self):
        s = summarize([5.0])
        assert s.stdev == 0.0

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_harmonic_mean(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)
        assert harmonic_mean([1.0, 3.0]) == pytest.approx(1.5)

    def test_harmonic_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            harmonic_mean([])
