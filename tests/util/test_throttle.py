"""Rate limiting: the pacing Throttle and the admission TokenBucket."""

import threading
import time

import pytest

from repro.util.throttle import Throttle, TokenBucket


class FakeTime:
    """Deterministic clock+sleep pair for driving a TokenBucket."""

    def __init__(self):
        self.now = 0.0
        self.slept = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.slept.append(seconds)
        self.now += seconds

    def bucket(self, rate, burst=None):
        return TokenBucket(rate, burst, clock=self.clock, sleep=self.sleep)


class TestThrottleHome:
    def test_importable_from_util_and_scrub(self):
        from repro.blob.scrub import Throttle as scrub_throttle
        from repro.util import Throttle as util_throttle

        assert scrub_throttle is Throttle
        assert util_throttle is Throttle

    def test_paces_aggregate_rate(self):
        throttle = Throttle(ops_per_sec=1000)
        start = time.monotonic()
        for _ in range(50):
            throttle.tick()
        elapsed = time.monotonic() - start
        # 50 ops at 1000/s need at least ~49ms of pacing.
        assert elapsed >= 0.04

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Throttle(ops_per_sec=0)


class TestTokenBucket:
    def test_starts_full_at_burst(self):
        ft = FakeTime()
        bucket = ft.bucket(rate=10, burst=5)
        assert bucket.available == 5

    def test_burst_defaults_to_one_second_of_rate(self):
        ft = FakeTime()
        assert ft.bucket(rate=8).burst == 8

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0)
        with pytest.raises(ValueError):
            TokenBucket(5, burst=0)

    def test_try_acquire_spends_without_waiting(self):
        ft = FakeTime()
        bucket = ft.bucket(rate=10, burst=3)
        assert bucket.try_acquire(3)
        assert not bucket.try_acquire(1)
        assert ft.slept == []

    def test_refill_is_capped_at_burst(self):
        ft = FakeTime()
        bucket = ft.bucket(rate=10, burst=3)
        assert bucket.try_acquire(3)
        ft.now += 100.0
        assert bucket.available == 3

    def test_acquire_sleeps_exactly_the_deficit(self):
        ft = FakeTime()
        bucket = ft.bucket(rate=10, burst=10)
        assert bucket.acquire(10)  # drains the initial burst, no wait
        assert ft.slept == []
        assert bucket.acquire(5)  # 5-token deficit at 10/s = 0.5s
        assert ft.slept == [pytest.approx(0.5)]
        assert bucket.waited == pytest.approx(0.5)

    def test_acquire_reserves_so_waiters_queue_fifo(self):
        ft = FakeTime()
        bucket = ft.bucket(rate=10, burst=10)
        assert bucket.acquire(15)  # 0.5s backlog; the balance went negative
        assert bucket.available == pytest.approx(0)  # refilled during the sleep
        assert bucket.acquire(10)  # pays its own 1.0s share on top
        assert ft.slept == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_timeout_rejects_without_consuming(self):
        ft = FakeTime()
        bucket = ft.bucket(rate=10, burst=10)
        assert bucket.acquire(10)
        before = bucket.available
        assert not bucket.acquire(20, timeout=0.1)  # needs 2s > 0.1s
        assert bucket.rejected == 1
        assert bucket.available == before
        assert ft.slept == []

    def test_timeout_admits_when_wait_fits(self):
        ft = FakeTime()
        bucket = ft.bucket(rate=10, burst=10)
        assert bucket.acquire(10)
        assert bucket.acquire(1, timeout=0.5)  # 0.1s wait fits
        assert ft.slept == [pytest.approx(0.1)]

    def test_zero_request_is_free(self):
        ft = FakeTime()
        bucket = ft.bucket(rate=1, burst=1)
        assert bucket.acquire(0)
        assert bucket.available == 1

    def test_interrupt_cuts_the_sleep_short(self):
        bucket = TokenBucket(rate=2, burst=1)
        assert bucket.acquire(1)
        stop = threading.Event()
        stop.set()
        start = time.monotonic()
        assert bucket.acquire(1, interrupt=stop)  # 0.5s wait skipped
        assert time.monotonic() - start < 0.25

    def test_concurrent_acquires_converge_to_rate(self):
        bucket = TokenBucket(rate=200, burst=1)
        done = []

        def worker():
            for _ in range(10):
                assert bucket.acquire(1)
            done.append(1)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        start = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.monotonic() - start
        # 40 ops minus the 1-token burst at 200/s: >= ~0.19s of pacing.
        assert len(done) == 4
        assert elapsed >= 0.15
