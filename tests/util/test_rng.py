"""Determinism tests for the RNG plumbing."""

from repro.util import SeedFactory, derive_rng


class TestSeedFactory:
    def test_same_seed_same_streams(self):
        a, b = SeedFactory(42), SeedFactory(42)
        assert a.spawn().integers(0, 1 << 30, 16).tolist() == b.spawn().integers(
            0, 1 << 30, 16
        ).tolist()

    def test_spawn_order_matters_but_is_reproducible(self):
        fac = SeedFactory(1)
        first = fac.spawn().integers(0, 1 << 30, 8).tolist()
        second = fac.spawn().integers(0, 1 << 30, 8).tolist()
        assert first != second
        fac2 = SeedFactory(1)
        assert fac2.spawn().integers(0, 1 << 30, 8).tolist() == first

    def test_named_streams_order_independent(self):
        fac1 = SeedFactory(7)
        x1 = fac1.named("placement").integers(0, 1000, 4).tolist()
        y1 = fac1.named("workload").integers(0, 1000, 4).tolist()
        fac2 = SeedFactory(7)
        y2 = fac2.named("workload").integers(0, 1000, 4).tolist()
        x2 = fac2.named("placement").integers(0, 1000, 4).tolist()
        assert (x1, y1) == (x2, y2)

    def test_named_streams_differ(self):
        fac = SeedFactory(7)
        assert fac.named("a").integers(0, 1 << 20, 8).tolist() != fac.named(
            "b"
        ).integers(0, 1 << 20, 8).tolist()

    def test_different_seeds_differ(self):
        assert SeedFactory(1).spawn().integers(0, 1 << 30, 8).tolist() != SeedFactory(
            2
        ).spawn().integers(0, 1 << 30, 8).tolist()


class TestDeriveRng:
    def test_reproducible(self):
        assert derive_rng(3, 1, 2).random() == derive_rng(3, 1, 2).random()

    def test_key_sensitivity(self):
        assert derive_rng(3, 1).random() != derive_rng(3, 2).random()
