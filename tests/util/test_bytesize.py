"""Unit tests for byte-size parsing/formatting."""

import pytest

from repro.util import GB, KB, MB, TB, format_size, parse_size


class TestParseSize:
    def test_plain_int_passthrough(self):
        assert parse_size(4096) == 4096

    def test_float_rounds(self):
        assert parse_size(10.6) == 11

    def test_zero(self):
        assert parse_size(0) == 0
        assert parse_size("0") == 0

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("64MB", 64 * MB),
            ("64 MB", 64 * MB),
            ("64mb", 64 * MB),
            ("64MiB", 64 * MB),
            ("4KB", 4 * KB),
            ("4k", 4 * KB),
            ("1GB", GB),
            ("1.5GB", round(1.5 * GB)),
            ("6.4 GB", round(6.4 * GB)),
            ("2TB", 2 * TB),
            ("128", 128),
            ("128B", 128),
            ("117.5MB/s", int(117.5 * MB)),
        ],
    )
    def test_string_forms(self, text, expected):
        assert parse_size(text) == expected

    def test_negative_number_rejected(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            parse_size(True)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_size("sixty four megs")

    def test_unknown_unit_rejected(self):
        with pytest.raises(ValueError):
            parse_size("12 parsecs")

    def test_non_string_non_number_rejected(self):
        with pytest.raises(TypeError):
            parse_size([64])


class TestFormatSize:
    def test_bytes(self):
        assert format_size(12) == "12B"

    def test_megabytes(self):
        assert format_size(64 * MB) == "64.0MB"

    def test_gigabytes_precision(self):
        assert format_size(int(6.4 * GB), precision=2) == "6.40GB"

    def test_negative(self):
        assert format_size(-2 * KB) == "-2.0KB"

    def test_roundtrip(self):
        for n in (1, KB, 3 * MB, 7 * GB, 2 * TB):
            assert parse_size(format_size(n, precision=6)) == pytest.approx(n, rel=1e-5)
