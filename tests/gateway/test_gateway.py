"""Multi-tenant gateway: authentication, isolation, quotas, admission.

The contract under test (DESIGN.md §12): tenants sharing one store can
never see each other's namespaces, an over-quota write is refused with
a typed error *before* it consumes placements, and one tenant's
throttle backlog never blocks another tenant's traffic.
"""

import threading
import time

import pytest

from repro.blob import StoreConfig
from repro.errors import (
    AdmissionRejected,
    FileNotFound,
    GatewayError,
    QuotaExceeded,
    TenantAuthError,
    UnknownTenant,
)
from repro.gateway import Gateway, GatewayClient, TenantPolicy

BS = 1024


@pytest.fixture
def gateway():
    gw = Gateway(config=StoreConfig(data_providers=4, block_size=BS))
    yield gw
    gw.close()


def connect(gateway, tenant_id, policy=None):
    token = gateway.register_tenant(tenant_id, policy)
    return gateway.connect(tenant_id, token)


class TestAuthentication:
    def test_register_returns_a_usable_token(self, gateway):
        token = gateway.register_tenant("alice")
        client = gateway.connect("alice", token)
        assert isinstance(client, GatewayClient)
        assert client.tenant_id == "alice"

    def test_wrong_token_is_refused(self, gateway):
        gateway.register_tenant("alice")
        with pytest.raises(TenantAuthError):
            gateway.connect("alice", "not-the-token")

    def test_another_tenants_token_does_not_transfer(self, gateway):
        gateway.register_tenant("alice")
        token_bob = gateway.register_tenant("bob")
        with pytest.raises(TenantAuthError):
            gateway.connect("alice", token_bob)

    def test_unknown_tenant(self, gateway):
        with pytest.raises(UnknownTenant):
            gateway.connect("nobody", "token")

    def test_duplicate_registration_is_refused(self, gateway):
        gateway.register_tenant("alice")
        with pytest.raises(ValueError, match="already registered"):
            gateway.register_tenant("alice")

    @pytest.mark.parametrize("bad", ["", "a/b", "../up", ".hidden", "-x", "a b"])
    def test_malformed_tenant_ids_are_refused(self, gateway, bad):
        with pytest.raises(ValueError, match="tenant id"):
            gateway.register_tenant(bad)

    def test_gateway_errors_share_a_base_class(self):
        for exc in (UnknownTenant, TenantAuthError, QuotaExceeded, AdmissionRejected):
            assert issubclass(exc, GatewayError)


class TestNamespaceIsolation:
    def test_same_path_is_a_different_file_per_tenant(self, gateway):
        alice = connect(gateway, "alice")
        bob = connect(gateway, "bob")
        alice.write_file("/data/log", b"alice bytes")
        bob.write_file("/data/log", b"bob bytes")
        assert alice.read_file("/data/log") == b"alice bytes"
        assert bob.read_file("/data/log") == b"bob bytes"

    def test_a_tenant_cannot_see_anothers_files(self, gateway):
        alice = connect(gateway, "alice")
        bob = connect(gateway, "bob")
        alice.write_file("/secret", b"s")
        assert not bob.exists("/secret")
        with pytest.raises(FileNotFound):
            bob.stat("/secret")
        assert bob.list("/") == []

    def test_listings_and_stat_report_tenant_relative_paths(self, gateway):
        alice = connect(gateway, "alice")
        alice.write_file("/a/b", b"x")
        assert alice.list("/") == ["/a"]
        assert alice.list("/a") == ["/a/b"]
        status = alice.stat("/a/b")
        assert status.path == "/a/b"
        assert status.size == 1
        assert alice.stat("/").is_dir

    def test_relative_components_cannot_escape_the_prefix(self, gateway):
        alice = connect(gateway, "alice")
        connect(gateway, "bob").write_file("/x", b"bob")
        for sneaky in ("/../bob/x", "/a/../../bob/x", "/./x"):
            with pytest.raises(ValueError):
                alice.read_file(sneaky)

    def test_tenants_share_one_store_namespace_under_the_hood(self, gateway):
        alice = connect(gateway, "alice")
        bob = connect(gateway, "bob")
        alice.write_file("/f", b"a")
        bob.write_file("/f", b"b")
        assert gateway.fs.list_dir("/tenants") == ["/tenants/alice", "/tenants/bob"]

    def test_delete_is_confined_and_credits_the_owner_only(self, gateway):
        alice = connect(gateway, "alice")
        bob = connect(gateway, "bob")
        alice.write_file("/d/f", b"xxxx")
        bob.write_file("/d/f", b"yyyy")
        alice.delete("/d", recursive=True)
        assert not alice.exists("/d/f")
        assert bob.read_file("/d/f") == b"yyyy"

    def test_the_tenant_root_itself_is_not_deletable(self, gateway):
        alice = connect(gateway, "alice")
        with pytest.raises(ValueError, match="tenant root"):
            alice.delete("/", recursive=True)


class TestQuota:
    def test_over_quota_write_raises_typed_error(self, gateway):
        alice = connect(gateway, "alice", TenantPolicy(quota_bytes=10 * BS))
        alice.write_file("/a", b"x" * (8 * BS))
        with pytest.raises(QuotaExceeded) as info:
            alice.write_file("/b", b"x" * (4 * BS))
        assert info.value.tenant_id == "alice"
        assert info.value.requested == 4 * BS
        assert info.value.used == 8 * BS
        assert info.value.quota == 10 * BS

    def test_over_quota_write_consumes_no_placements(self, gateway):
        alice = connect(gateway, "alice", TenantPolicy(quota_bytes=BS))
        manager = gateway.store.provider_manager
        before = manager.block_counts()
        with pytest.raises(QuotaExceeded):
            alice.write_file("/big", b"x" * (64 * BS))
        assert manager.block_counts() == before
        usage = manager.tenant_usage("alice")
        assert usage["bytes_stored"] == 0
        assert usage["bytes_reserved"] == 0
        assert usage["quota_rejections"] == 1

    def test_quota_counts_across_files_and_appends(self, gateway):
        alice = connect(gateway, "alice", TenantPolicy(quota_bytes=4 * BS))
        alice.write_file("/a", b"x" * (2 * BS))
        with alice.append("/a") as stream:
            stream.write(b"x" * (2 * BS))
        with pytest.raises(QuotaExceeded):
            alice.write_file("/b", b"x")

    def test_delete_returns_headroom(self, gateway):
        alice = connect(gateway, "alice", TenantPolicy(quota_bytes=2 * BS))
        alice.write_file("/a", b"x" * (2 * BS))
        with pytest.raises(QuotaExceeded):
            alice.write_file("/b", b"y")
        alice.delete("/a")
        # "/b" itself survived the refused write as an empty file — the
        # namespace entry was created before the quota check fired.
        assert alice.stat("/b").size == 0
        alice.write_file("/c", b"y" * BS)
        assert alice.read_file("/c") == b"y" * BS

    def test_quota_is_per_tenant_not_global(self, gateway):
        alice = connect(gateway, "alice", TenantPolicy(quota_bytes=BS))
        bob = connect(gateway, "bob", TenantPolicy(quota_bytes=10 * BS))
        with pytest.raises(QuotaExceeded):
            alice.write_file("/f", b"x" * (2 * BS))
        bob.write_file("/f", b"x" * (2 * BS))  # unaffected

    def test_failed_quota_write_leaves_earlier_bytes_intact(self, gateway):
        alice = connect(gateway, "alice", TenantPolicy(quota_bytes=3 * BS))
        with pytest.raises(QuotaExceeded):
            with alice.create("/f") as stream:
                stream.write(b"a" * (2 * BS))  # fits
                stream.write(b"b" * (2 * BS))  # refused
        assert alice.stat("/f").size == 2 * BS
        usage = gateway.store.provider_manager.tenant_usage("alice")
        assert usage["bytes_stored"] == 2 * BS
        assert usage["bytes_reserved"] == 0


class TestAdmissionControl:
    def test_in_flight_cap_rejects_immediately(self, gateway):
        alice = connect(gateway, "alice", TenantPolicy(max_in_flight=1))
        stream = alice.create("/f")
        with pytest.raises(AdmissionRejected) as info:
            alice.create("/g")
        assert "in-flight" in info.value.reason
        stream.close()
        alice.create("/g").close()  # capacity came back with the close

    def test_op_rate_with_zero_queue_timeout_rejects_the_burst_overflow(
        self, gateway
    ):
        policy = TenantPolicy(
            append_ops_per_sec=1, burst_seconds=1, queue_timeout=0.0
        )
        alice = connect(gateway, "alice", policy)
        alice.write_file("/a", b"x")  # consumes the single burst token
        with pytest.raises(AdmissionRejected):
            alice.create("/b")
        assert alice.stats()["admission_rejections"] == 1

    def test_bandwidth_bucket_paces_writes(self, gateway):
        # 64 KB/s with a 1/16-second burst: a 8 KB write must wait.
        policy = TenantPolicy(bytes_per_sec=64 * BS, burst_seconds=1 / 16)
        alice = connect(gateway, "alice", policy)
        start = time.monotonic()
        alice.write_file("/f", b"x" * (8 * BS))
        elapsed = time.monotonic() - start
        assert elapsed >= 0.05  # (8 - 4) KB deficit at 64 KB/s
        assert alice.stats()["throttle_wait_s"] > 0

    def test_read_ops_are_a_separate_bucket_from_appends(self, gateway):
        policy = TenantPolicy(
            append_ops_per_sec=1, burst_seconds=1, queue_timeout=0.0
        )
        alice = connect(gateway, "alice", policy)
        alice.write_file("/f", b"x")
        for _ in range(5):  # reads are unrated by this policy
            assert alice.read_file("/f") == b"x"

    def test_one_tenants_backlog_does_not_block_anothers_reads(self, gateway):
        slow = connect(
            gateway,
            "slowpoke",
            TenantPolicy(append_ops_per_sec=2, burst_seconds=0.5),
        )
        fast = connect(gateway, "speedy")
        fast.write_file("/data", b"z" * BS)

        done = threading.Event()

        def slow_appends():
            for i in range(4):  # 1 burst token + 3 waits of ~0.5s each
                slow.write_file(f"/f{i}", b"s")
            done.set()

        worker = threading.Thread(target=slow_appends)
        worker.start()
        try:
            start = time.monotonic()
            for _ in range(20):
                assert fast.read_file("/data") == b"z" * BS
            fast_elapsed = time.monotonic() - start
            assert fast_elapsed < 1.0
            assert not done.is_set()  # slowpoke is still paying its backlog
        finally:
            worker.join()

    def test_scrub_rides_its_own_op_class(self, gateway):
        alice = connect(
            gateway,
            "alice",
            TenantPolicy(append_ops_per_sec=1, burst_seconds=1, queue_timeout=0.0),
        )
        alice.write_file("/f", b"x")  # burns the append budget
        report = alice.scrub()  # scrub class is unrated here
        assert not report.errors
        assert alice.stats()["ops"]["scrub"] == 1


class TestSessionsAndStats:
    def test_version_pinning_survives_the_gateway(self, gateway):
        alice = connect(gateway, "alice")
        alice.write_file("/f", b"v1")
        with alice.append("/f") as stream:
            stream.write(b"+v2")
        assert alice.read("/f", version=1) == b"v1"
        assert alice.read_file("/f") == b"v1+v2"

    def test_stats_merge_gateway_and_quota_counters(self, gateway):
        alice = connect(gateway, "alice", TenantPolicy(quota_bytes=BS))
        alice.write_file("/f", b"x" * 10)
        alice.read_file("/f")
        stats = gateway.tenant_stats()["alice"]
        assert stats["ops"]["append"] == 1
        assert stats["ops"]["read"] == 1
        assert stats["bytes_in"] == 10
        assert stats["bytes_out"] == 10
        assert stats["bytes_stored"] == 10
        assert stats["quota_bytes"] == BS
        assert stats["in_flight"] == 0

    def test_set_policy_takes_effect_and_keeps_counters(self, gateway):
        alice = connect(gateway, "alice")
        alice.write_file("/f", b"x" * 10)
        gateway.set_policy("alice", TenantPolicy(quota_bytes=12))
        with pytest.raises(QuotaExceeded):
            alice.write_file("/g", b"y" * 10)
        assert gateway.tenant_stats()["alice"]["ops"]["append"] >= 1

    def test_wrapping_an_existing_fs_does_not_close_it(self):
        from repro.bsfs.filesystem import BSFSFileSystem

        fs = BSFSFileSystem(config=StoreConfig(data_providers=2, block_size=BS))
        gw = Gateway(fs=fs)
        connect(gw, "alice").write_file("/f", b"x")
        gw.close()
        assert fs.store.read(fs.blob_of("/tenants/alice/f")) == b"x"
        fs.store.close()

    def test_fs_and_config_are_mutually_exclusive(self):
        from repro.bsfs.filesystem import BSFSFileSystem

        fs = BSFSFileSystem(config=StoreConfig(data_providers=2))
        with pytest.raises(TypeError):
            Gateway(fs=fs, config=StoreConfig())
        fs.store.close()
