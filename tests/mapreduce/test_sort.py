"""Tests for the total-order sort application."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem
from repro.mapreduce import LocalJobRunner
from repro.mapreduce.apps import range_partitioner, sample_cut_points, sort_job

BS = 256


def make_fs():
    return BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=6, metadata_providers=2, block_size=BS))
    )


def run_sort(fs, lines, num_reducers=3):
    fs.write_file("/in/data", "".join(l + "\n" for l in lines).encode())
    result = LocalJobRunner(fs).run(
        sort_job(fs, ["/in/data"], "/sorted", num_reducers=num_reducers)
    )
    output = []
    for path in sorted(result.output_paths):  # partition order
        output.extend(fs.read_file(path).decode().splitlines())
    return output


class TestRangePartitioner:
    def test_three_way_split(self):
        part = range_partitioner(["g", "p"])
        assert part("a", 3) == 0
        assert part("g", 3) == 1  # cut point goes right
        assert part("m", 3) == 1
        assert part("z", 3) == 2

    def test_single_reducer_no_cuts(self):
        part = range_partitioner([])
        assert part("anything", 1) == 0

    def test_clamped_to_reducers(self):
        part = range_partitioner(["a", "b", "c", "d"])
        assert part("zzz", 2) == 1


class TestSampling:
    def test_cut_point_count(self):
        fs = make_fs()
        fs.write_file("/in/f", b"".join(f"k{i:03d}\n".encode() for i in range(100)))
        cuts = sample_cut_points(fs, ["/in/f"], num_reducers=4)
        assert len(cuts) == 3
        assert cuts == sorted(cuts)

    def test_single_reducer_empty(self):
        fs = make_fs()
        fs.write_file("/in/f", b"a\n")
        assert sample_cut_points(fs, ["/in/f"], num_reducers=1) == []

    def test_validation(self):
        fs = make_fs()
        with pytest.raises(ValueError):
            sample_cut_points(fs, [], num_reducers=0)
        with pytest.raises(ValueError):
            sample_cut_points(fs, [], num_reducers=2, sample_records=0)


class TestSortJob:
    def test_total_order(self):
        fs = make_fs()
        lines = [f"key-{(i * 7919) % 500:04d}" for i in range(500)]
        output = run_sort(fs, lines)
        assert output == sorted(lines)

    def test_duplicates_preserved(self):
        fs = make_fs()
        lines = ["b", "a", "b", "a", "c", "b"]
        output = run_sort(fs, lines, num_reducers=2)
        assert output == sorted(lines)

    def test_single_reducer(self):
        fs = make_fs()
        lines = [f"{i:03d}" for i in range(50, 0, -1)]
        assert run_sort(fs, lines, num_reducers=1) == sorted(lines)

    def test_partitions_are_ranges(self):
        fs = make_fs()
        lines = [f"{chr(97 + i % 26)}{i:03d}" for i in range(200)]
        fs.write_file("/in/data", "".join(l + "\n" for l in lines).encode())
        result = LocalJobRunner(fs).run(
            sort_job(fs, ["/in/data"], "/sorted", num_reducers=4)
        )
        previous_max = ""
        for path in sorted(result.output_paths):
            part_lines = fs.read_file(path).decode().splitlines()
            if not part_lines:
                continue
            assert part_lines == sorted(part_lines)
            assert part_lines[0] >= previous_max
            previous_max = part_lines[-1]

    @given(
        st.lists(
            st.text(alphabet="abcdef", min_size=1, max_size=6),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=25)
    def test_property_sorts_any_input(self, lines):
        fs = make_fs()
        assert run_sort(fs, lines, num_reducers=3) == sorted(lines)
