"""End-to-end MapReduce jobs on BSFS and HDFS."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem
from repro.errors import JobFailed
from repro.hdfs import HDFSFileSystem
from repro.mapreduce import Emitter, JobConf, LocalJobRunner
from repro.mapreduce.apps import grep_job, wordcount_job

BS = 256


def make_bsfs():
    return BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=6, metadata_providers=2, block_size=BS))
    )


def make_hdfs():
    return HDFSFileSystem(datanodes=6, block_size=BS, seed=3)


@pytest.fixture(params=["bsfs", "hdfs"])
def fs(request):
    return make_bsfs() if request.param == "bsfs" else make_hdfs()


class TestWordCount:
    def test_counts_are_exact(self, fs):
        text = b"the quick brown fox\nthe lazy dog\nthe fox\n" * 40
        fs.write_file("/in/text", text, client="edge")
        runner = LocalJobRunner(fs, trackers=["t0", "t1"])
        result = runner.run(wordcount_job(["/in"], "/out", num_reducers=2))
        counts = {}
        for path in result.output_paths:
            for line in fs.read_file(path).decode().splitlines():
                word, n = line.split("\t")
                counts[word] = int(n)
        assert counts["the"] == 120
        assert counts["fox"] == 80
        assert counts["quick"] == 40
        assert counts["dog"] == 40

    def test_multi_reducer_partitions_disjoint(self, fs):
        fs.write_file("/in/t", b"a b c d e f g h\n" * 20, client="edge")
        runner = LocalJobRunner(fs)
        result = runner.run(wordcount_job(["/in"], "/out", num_reducers=4))
        assert len(result.output_paths) == 4
        words_per_part = [
            {l.split("\t")[0] for l in fs.read_file(p).decode().splitlines()}
            for p in result.output_paths
        ]
        seen = set()
        for words in words_per_part:
            assert not (words & seen)
            seen |= words
        assert seen == set("abcdefgh")


class TestGrep:
    def test_matches_reference_count(self, fs):
        lines = [f"record {i} {'needle' if i % 7 == 0 else 'hay'}" for i in range(500)]
        fs.write_file("/in/log", ("\n".join(lines) + "\n").encode(), client="edge")
        runner = LocalJobRunner(fs)
        result = runner.run(grep_job(["/in/log"], "/out", "needle"))
        (path,) = result.output_paths
        key, count = fs.read_file(path).decode().strip().split("\t")
        expected = sum(1 for l in lines if "needle" in l)
        assert key == "matching-lines" and int(count) == expected

    def test_combiner_shrinks_shuffle(self, fs):
        fs.write_file("/in/log", b"needle\n" * 300, client="edge")
        runner = LocalJobRunner(fs)
        result = runner.run(grep_job(["/in/log"], "/out", "needle"))
        # Each map contributes one combined record, not 300.
        assert result.counters["reduce_records_in"] == result.counters["maps_total"]

    def test_no_matches(self, fs):
        fs.write_file("/in/log", b"only hay here\n" * 10, client="edge")
        runner = LocalJobRunner(fs)
        result = runner.run(grep_job(["/in/log"], "/out", "needle"))
        (path,) = result.output_paths
        assert fs.read_file(path) == b""


class TestEngineMechanics:
    def test_splits_align_with_blocks_and_locality(self):
        """With trackers == storage nodes, maps are mostly data-local."""
        fs = make_bsfs()
        # Exactly 6 blocks over 6 providers: round-robin gives each
        # provider one block, so perfect locality is achievable.
        body = (b"y" * (BS - 1) + b"\n") * 6
        fs.write_file("/in/big", body, client="edge")
        trackers = list(fs.store.providers)
        runner = LocalJobRunner(fs, trackers=trackers)
        result = runner.run(grep_job(["/in/big"], "/out", "zzz"))
        assert result.counters["maps_total"] == 6
        assert result.locality == 1.0  # every block's provider is a tracker

    def test_map_only_job_one_file_per_mapper(self):
        fs = make_bsfs()

        def mapper(key, _value, emit: Emitter):
            emit(None, f"output-of-{key}")

        job = JobConf(
            name="gen", output_dir="/gen", mapper=mapper, synthetic_maps=3
        )
        result = LocalJobRunner(fs).run(job)
        assert len(result.output_paths) == 3
        assert fs.read_file("/gen/part-m-00001") == b"output-of-1\n"

    def test_failing_task_retried_then_job_fails(self):
        fs = make_bsfs()
        fs.write_file("/in/x", b"data\n")
        attempts = []

        def bad_mapper(_k, _v, _emit):
            attempts.append(1)
            raise RuntimeError("flaky")

        job = JobConf(
            name="doomed", output_dir="/out", mapper=bad_mapper, input_paths=("/in/x",)
        )
        runner = LocalJobRunner(fs, max_attempts=3)
        with pytest.raises(JobFailed):
            runner.run(job)
        assert len(attempts) == 3

    def test_transient_failure_recovers(self):
        fs = make_bsfs()
        fs.write_file("/in/x", b"data\n")
        attempts = []

        def flaky_mapper(_k, v, emit):
            attempts.append(1)
            if len(attempts) < 2:
                raise RuntimeError("first attempt dies")
            emit("ok", v)

        def reducer(k, values, emit):
            emit(k, len(values))

        job = JobConf(
            name="flaky",
            output_dir="/out",
            mapper=flaky_mapper,
            reducer=reducer,
            input_paths=("/in/x",),
        )
        result = LocalJobRunner(fs).run(job)
        assert result.counters["task_retries"] == 1
        (path,) = result.output_paths
        assert fs.read_file(path) == b"ok\t1\n"

    def test_empty_input_rejected(self):
        fs = make_bsfs()
        fs.write_file("/in/empty", b"")
        job = JobConf(
            name="nothing",
            output_dir="/out",
            mapper=lambda k, v, e: None,
            input_paths=("/in/empty",),
        )
        with pytest.raises(JobFailed, match="no input"):
            LocalJobRunner(fs).run(job)

    def test_jobconf_validation(self):
        with pytest.raises(ValueError):
            JobConf(name="x", output_dir="/o", mapper=lambda k, v, e: None)
        with pytest.raises(ValueError):
            JobConf(
                name="x",
                output_dir="/o",
                mapper=lambda k, v, e: None,
                input_paths=("/a",),
                synthetic_maps=2,
            )
        with pytest.raises(ValueError):
            JobConf(
                name="x",
                output_dir="/o",
                mapper=lambda k, v, e: None,
                synthetic_maps=1,
                combiner=lambda k, v, e: None,
            )
