"""Tests for locality-aware wave scheduling."""

import pytest

from repro.mapreduce import schedule_map_tasks
from repro.mapreduce.io import FileSplit, SyntheticSplit


def split(i, hosts):
    return FileSplit(path="/f", offset=i * 64, length=64, hosts=tuple(hosts))


class TestLocality:
    def test_perfectly_local_when_possible(self):
        splits = [split(i, [f"t{i}"]) for i in range(4)]
        assignments, stats = schedule_map_tasks(splits, [f"t{i}" for i in range(4)])
        assert stats.local == 4 and stats.remote == 0
        assert stats.locality == 1.0
        for a in assignments:
            assert a.tracker in a.split.hosts

    def test_remote_when_data_elsewhere(self):
        splits = [split(i, ["storage-node"]) for i in range(4)]
        _, stats = schedule_map_tasks(splits, ["t0", "t1"])
        assert stats.local == 0 and stats.remote == 4

    def test_hotspot_forces_remote_maps(self):
        """All blocks on one node: only that node's slots are local —
        the §V-E explanation of remote maps."""
        splits = [split(i, ["hot"]) for i in range(8)]
        _, stats = schedule_map_tasks(splits, ["hot", "cold"], slots_per_tracker=2)
        # 'hot' takes a task per slot per wave; 'cold' must take remote ones.
        assert 0 < stats.local < 8
        assert stats.remote == 8 - stats.local

    def test_replicated_hosts_count_as_local(self):
        splits = [split(0, ["a", "b"])]
        _, stats = schedule_map_tasks(splits, ["b"])
        assert stats.local == 1

    def test_synthetic_splits_never_local(self):
        splits = [SyntheticSplit(index=i) for i in range(3)]
        _, stats = schedule_map_tasks(splits, ["t0"])
        assert stats.local == 0 and stats.total == 3


class TestWaves:
    def test_wave_count(self):
        splits = [split(i, []) for i in range(10)]
        _, stats = schedule_map_tasks(splits, ["t0", "t1"], slots_per_tracker=2)
        # 4 task launches per wave -> ceil(10/4) = 3 waves
        assert stats.waves == 3

    def test_single_wave_when_capacity_suffices(self):
        splits = [split(i, []) for i in range(4)]
        _, stats = schedule_map_tasks(splits, ["t0", "t1"], slots_per_tracker=2)
        assert stats.waves == 1

    def test_every_split_assigned_exactly_once(self):
        splits = [split(i, [f"t{i % 3}"]) for i in range(17)]
        assignments, stats = schedule_map_tasks(splits, ["t0", "t1", "t2"])
        assert stats.total == 17
        assert sorted(a.task_index for a in assignments) == list(range(17))

    def test_validation(self):
        with pytest.raises(ValueError):
            schedule_map_tasks([split(0, [])], [])
        with pytest.raises(ValueError):
            schedule_map_tasks([split(0, [])], ["t"], slots_per_tracker=0)

    def test_empty_splits(self):
        assignments, stats = schedule_map_tasks([], ["t0"])
        assert assignments == [] and stats.total == 0 and stats.locality == 1.0
