"""Tests for the paper's applications (RandomTextWriter, grep)."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem
from repro.mapreduce import LocalJobRunner
from repro.mapreduce.apps import (
    WORDS,
    grep_job,
    random_sentence,
    random_text_job,
    wordcount_job,
)
from repro.util.rng import derive_rng

BS = 512


@pytest.fixture
def fs():
    return BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=6, metadata_providers=2, block_size=BS))
    )


class TestRandomSentence:
    def test_uses_vocabulary(self):
        rng = derive_rng(0, 1)
        for _ in range(20):
            words = random_sentence(rng).split()
            assert 10 <= len(words) <= 20
            assert all(w in WORDS for w in words)

    def test_deterministic(self):
        assert random_sentence(derive_rng(5, 0)) == random_sentence(derive_rng(5, 0))


class TestRandomTextWriter:
    def test_one_output_file_per_mapper(self, fs):
        job = random_text_job("/rtw", num_mappers=4, bytes_per_mapper=2000, seed=1)
        result = LocalJobRunner(fs).run(job)
        assert len(result.output_paths) == 4
        assert sorted(result.output_paths) == [
            f"/rtw/part-m-0000{i}" for i in range(4)
        ]

    def test_output_size_near_target(self, fs):
        target = 5000
        job = random_text_job("/rtw", num_mappers=2, bytes_per_mapper=target, seed=2)
        LocalJobRunner(fs).run(job)
        for i in range(2):
            size = fs.status(f"/rtw/part-m-0000{i}").size
            assert target <= size <= target + 200  # overshoot < 1 sentence

    def test_mappers_produce_distinct_content(self, fs):
        job = random_text_job("/rtw", num_mappers=2, bytes_per_mapper=500, seed=3)
        LocalJobRunner(fs).run(job)
        assert fs.read_file("/rtw/part-m-00000") != fs.read_file("/rtw/part-m-00001")

    def test_seed_reproducibility(self, fs):
        job = random_text_job("/a", num_mappers=1, bytes_per_mapper=400, seed=9)
        LocalJobRunner(fs).run(job)
        job2 = random_text_job("/b", num_mappers=1, bytes_per_mapper=400, seed=9)
        LocalJobRunner(fs).run(job2)
        assert fs.read_file("/a/part-m-00000") == fs.read_file("/b/part-m-00000")

    def test_validation(self):
        with pytest.raises(ValueError):
            random_text_job("/o", num_mappers=0, bytes_per_mapper=10)
        with pytest.raises(ValueError):
            random_text_job("/o", num_mappers=1, bytes_per_mapper=0)


class TestPipelines:
    def test_rtw_output_greppable(self, fs):
        """The paper's workflow shape: one job's output is another's input."""
        LocalJobRunner(fs).run(
            random_text_job("/rtw", num_mappers=2, bytes_per_mapper=3000, seed=4)
        )
        result = LocalJobRunner(fs).run(grep_job(["/rtw"], "/grepped", WORDS[0]))
        (path,) = result.output_paths
        content = fs.read_file(path).decode().strip()
        reference = sum(
            1
            for i in range(2)
            for line in fs.read_file(f"/rtw/part-m-0000{i}").decode().splitlines()
            if WORDS[0] in line
        )
        if reference:
            assert int(content.split("\t")[1]) == reference
        else:
            assert content == ""

    def test_rtw_output_wordcountable(self, fs):
        LocalJobRunner(fs).run(
            random_text_job("/rtw", num_mappers=1, bytes_per_mapper=2000, seed=5)
        )
        result = LocalJobRunner(fs).run(wordcount_job(["/rtw"], "/wc", num_reducers=2))
        total = 0
        for path in result.output_paths:
            for line in fs.read_file(path).decode().splitlines():
                word, n = line.split("\t")
                assert word in WORDS
                total += int(n)
        reference = len(fs.read_file("/rtw/part-m-00000").split())
        assert total == reference
