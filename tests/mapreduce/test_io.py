"""Tests for splits, the line record reader, and text output."""

import pytest

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem
from repro.mapreduce import compute_file_splits, iter_lines, write_text_records

BS = 64


@pytest.fixture
def fs():
    return BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=6, metadata_providers=2, block_size=BS))
    )


class TestComputeSplits:
    def test_one_split_per_block(self, fs):
        fs.write_file("/f", bytes(3 * BS))
        splits = compute_file_splits(fs, ["/f"], BS)
        assert [(s.offset, s.length) for s in splits] == [
            (0, BS), (BS, BS), (2 * BS, BS)
        ]

    def test_trailing_partial_split(self, fs):
        fs.write_file("/f", bytes(BS + 10))
        splits = compute_file_splits(fs, ["/f"], BS)
        assert [(s.offset, s.length) for s in splits] == [(0, BS), (BS, 10)]

    def test_hosts_carried_from_layout(self, fs):
        fs.write_file("/f", bytes(2 * BS))
        splits = compute_file_splits(fs, ["/f"], BS)
        expected = [loc.hosts for loc in fs.block_locations("/f", 0, 2 * BS)]
        assert [s.hosts for s in splits] == expected

    def test_directory_recursion(self, fs):
        fs.write_file("/in/a", bytes(BS))
        fs.write_file("/in/sub/b", bytes(BS))
        fs.write_file("/elsewhere", bytes(BS))
        splits = compute_file_splits(fs, ["/in"], BS)
        assert sorted({s.path for s in splits}) == ["/in/a", "/in/sub/b"]

    def test_empty_file_no_splits(self, fs):
        fs.write_file("/empty", b"")
        assert compute_file_splits(fs, ["/empty"], BS) == []

    def test_validation(self, fs):
        fs.write_file("/f", bytes(BS))
        with pytest.raises(ValueError):
            compute_file_splits(fs, ["/f"], 0)


class TestLineReader:
    def write_lines(self, fs, lines):
        fs.write_file("/text", "".join(l + "\n" for l in lines).encode())

    def test_single_split_reads_all(self, fs):
        self.write_lines(fs, ["alpha", "beta", "gamma"])
        with fs.open("/text") as stream:
            records = list(iter_lines(stream, 0, stream.size))
        assert [line for _, line in records] == ["alpha", "beta", "gamma"]
        assert records[0][0] == 0

    def test_split_boundary_exactly_once(self, fs):
        """Every line is owned by exactly one split, whatever the cut."""
        lines = [f"line-{i:04d}-" + "x" * (i % 37) for i in range(100)]
        self.write_lines(fs, lines)
        with fs.open("/text") as stream:
            size = stream.size
            for split_len in (17, 64, 100, size):
                collected = []
                offset = 0
                while offset < size:
                    length = min(split_len, size - offset)
                    collected.extend(
                        line for _, line in iter_lines(stream, offset, length)
                    )
                    offset += length
                assert collected == lines, f"split_len={split_len}"

    def test_line_spanning_blocks(self, fs):
        long_line = "z" * (2 * BS + 7)
        self.write_lines(fs, [long_line, "tail"])
        with fs.open("/text") as stream:
            records = list(iter_lines(stream, 0, 10))  # split ends mid-line
            assert [l for _, l in records] == [long_line]
            records2 = list(iter_lines(stream, 10, stream.size - 10))
            assert [l for _, l in records2] == ["tail"]

    def test_no_trailing_newline(self, fs):
        fs.write_file("/text", b"one\ntwo")
        with fs.open("/text") as stream:
            records = list(iter_lines(stream, 0, stream.size))
        assert [l for _, l in records] == ["one", "two"]

    def test_offsets_are_byte_positions(self, fs):
        self.write_lines(fs, ["ab", "cdef"])
        with fs.open("/text") as stream:
            records = list(iter_lines(stream, 0, stream.size))
        assert records == [(0, "ab"), (3, "cdef")]

    def test_empty_lines_preserved(self, fs):
        fs.write_file("/text", b"a\n\nb\n")
        with fs.open("/text") as stream:
            assert [l for _, l in iter_lines(stream, 0, stream.size)] == ["a", "", "b"]


class TestTextOutput:
    def test_key_value_lines(self, fs):
        write_text_records(fs, "/out", [("k1", 1), ("k2", "two")])
        assert fs.read_file("/out") == b"k1\t1\nk2\ttwo\n"

    def test_none_key_bare_value(self, fs):
        write_text_records(fs, "/out", [(None, "just text")])
        assert fs.read_file("/out") == b"just text\n"

    def test_returns_bytes_written(self, fs):
        n = write_text_records(fs, "/out", [("a", "b")])
        assert n == len(b"a\tb\n")

    def test_empty(self, fs):
        write_text_records(fs, "/out", [])
        assert fs.read_file("/out") == b""
