"""Shared pytest configuration.

Registers a hypothesis profile suited to CI: no wall-clock deadline
(simulation-heavy properties vary in runtime) and derandomized so runs
are reproducible.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
