"""Shared pytest configuration.

Registers two hypothesis profiles:

* ``repro`` (default) — suited to the fast tier-1 CI job: no
  wall-clock deadline (simulation-heavy properties vary in runtime)
  and derandomized so runs are reproducible.
* ``chaos`` — for the CI chaos job running the failure-injection
  suites: deadline disabled and a higher example count, randomized so
  repeated runs explore new interleavings.  This conftest selects the
  profile from ``HYPOTHESIS_PROFILE``; values it does not register
  (e.g. one exported for an unrelated project) fall back to the
  default rather than aborting collection.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "chaos",
    deadline=None,
    max_examples=300,
    suppress_health_check=[HealthCheck.too_slow],
)

_profile = os.environ.get("HYPOTHESIS_PROFILE", "repro")
settings.load_profile(_profile if _profile in ("repro", "chaos") else "repro")
