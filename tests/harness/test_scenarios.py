"""Tests for the microbenchmark scenario drivers (quick deployments)."""

import pytest

from repro.errors import AppendNotSupported
from repro.harness import concurrent_appenders, concurrent_readers, single_writer
from repro.util.bytesize import MB

NODES = 40  # small but structurally complete deployment


class TestSingleWriter:
    def test_bsfs_beats_hdfs(self):
        bsfs = single_writer("bsfs", n_blocks=8, total_nodes=NODES)
        hdfs = single_writer("hdfs", n_blocks=8, total_nodes=NODES)
        assert bsfs.throughput > hdfs.throughput
        # Factor in the paper's band (~1.4-1.8x).
        assert 1.2 < bsfs.throughput / hdfs.throughput < 2.2

    def test_throughput_flat_with_size(self):
        small = single_writer("bsfs", n_blocks=4, total_nodes=NODES)
        large = single_writer("bsfs", n_blocks=16, total_nodes=NODES)
        assert large.throughput == pytest.approx(small.throughput, rel=0.10)

    def test_bsfs_layout_balanced(self):
        result = single_writer("bsfs", n_blocks=16, total_nodes=NODES)
        assert max(result.layout) - min(result.layout) <= 1

    def test_hdfs_layout_more_skewed(self):
        bsfs = single_writer("bsfs", n_blocks=16, total_nodes=NODES)
        hdfs = single_writer("hdfs", n_blocks=16, total_nodes=NODES)
        assert hdfs.unbalance > bsfs.unbalance

    def test_throughput_in_plausible_band(self):
        bsfs = single_writer("bsfs", n_blocks=8, total_nodes=NODES)
        hdfs = single_writer("hdfs", n_blocks=8, total_nodes=NODES)
        assert 55 * MB < bsfs.throughput < 75 * MB  # paper: ~60-70
        assert 30 * MB < hdfs.throughput < 50 * MB  # paper: ~40-47

    def test_seed_determinism(self):
        a = single_writer("hdfs", n_blocks=8, total_nodes=NODES, seed=3)
        b = single_writer("hdfs", n_blocks=8, total_nodes=NODES, seed=3)
        assert a == b

    def test_seed_changes_hdfs_layout(self):
        a = single_writer("hdfs", n_blocks=12, total_nodes=NODES, seed=1)
        b = single_writer("hdfs", n_blocks=12, total_nodes=NODES, seed=2)
        assert a.layout != b.layout


class TestConcurrentReaders:
    def test_bsfs_flat_under_concurrency(self):
        one = concurrent_readers("bsfs", n_clients=1, total_nodes=NODES)
        many = concurrent_readers("bsfs", n_clients=16, total_nodes=NODES)
        assert many.mean_client_throughput == pytest.approx(
            one.mean_client_throughput, rel=0.10
        )

    def test_hdfs_degrades_under_concurrency(self):
        one = concurrent_readers("hdfs", n_clients=1, total_nodes=NODES)
        many = concurrent_readers("hdfs", n_clients=16, total_nodes=NODES)
        assert many.mean_client_throughput < 0.85 * one.mean_client_throughput

    def test_bsfs_beats_hdfs_at_scale(self):
        bsfs = concurrent_readers("bsfs", n_clients=16, total_nodes=NODES)
        hdfs = concurrent_readers("hdfs", n_clients=16, total_nodes=NODES)
        assert bsfs.mean_client_throughput > hdfs.mean_client_throughput

    def test_hotspot_slows_minimum_client(self):
        hdfs = concurrent_readers("hdfs", n_clients=16, total_nodes=NODES)
        assert hdfs.min_client_throughput < hdfs.mean_client_throughput


class TestConcurrentAppenders:
    def test_aggregate_scales_near_linearly(self):
        one = concurrent_appenders("bsfs", n_clients=1, total_nodes=NODES)
        many = concurrent_appenders("bsfs", n_clients=12, total_nodes=NODES)
        scaling = many.aggregate_throughput / one.aggregate_throughput
        assert scaling > 9.0  # >= 75% parallel efficiency at 12 clients

    def test_hdfs_refused(self):
        with pytest.raises(AppendNotSupported):
            concurrent_appenders("hdfs", n_clients=2, total_nodes=NODES)

    def test_makespan_close_to_single_append(self):
        result = concurrent_appenders("bsfs", n_clients=12, total_nodes=NODES)
        single = concurrent_appenders("bsfs", n_clients=1, total_nodes=NODES)
        assert result.makespan < 1.5 * single.makespan
