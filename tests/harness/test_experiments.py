"""Shape tests for the regenerated figures (quick scale).

These encode the pass criteria from DESIGN.md §4: who wins, whether
curves are flat or degrade, how gaps trend.  The full-scale magnitudes
are exercised by the benchmark harness.
"""

import pytest

from repro.harness import (
    QUICK,
    figure_3a,
    figure_3b,
    figure_4,
    figure_5,
    figure_6a,
    figure_6b,
)


@pytest.fixture(scope="module")
def fig3a():
    return figure_3a(QUICK)


@pytest.fixture(scope="module")
def fig3b():
    return figure_3b(QUICK)


@pytest.fixture(scope="module")
def fig4():
    return figure_4(QUICK)


@pytest.fixture(scope="module")
def fig5():
    return figure_5(QUICK)


@pytest.fixture(scope="module")
def fig6a():
    return figure_6a(QUICK)


@pytest.fixture(scope="module")
def fig6b():
    return figure_6b(QUICK)


class TestFigure3a:
    def test_bsfs_wins_everywhere(self, fig3a):
        for b, h in zip(fig3a.ys("BSFS"), fig3a.ys("HDFS")):
            assert b > h

    def test_factor_band(self, fig3a):
        for b, h in zip(fig3a.ys("BSFS"), fig3a.ys("HDFS")):
            assert 1.3 < b / h < 2.2  # paper: ~1.5-1.7x

    def test_bsfs_sustained(self, fig3a):
        ys = fig3a.ys("BSFS")
        assert min(ys) > 0.9 * max(ys)


class TestFigure3b:
    def test_hdfs_unbalance_grows(self, fig3b):
        ys = fig3b.ys("HDFS")
        assert ys[-1] > ys[0]

    def test_bsfs_much_more_balanced_at_size(self, fig3b):
        assert fig3b.ys("BSFS")[-1] < 0.5 * fig3b.ys("HDFS")[-1]


class TestFigure4:
    def test_bsfs_flat(self, fig4):
        ys = fig4.ys("BSFS")
        assert min(ys) > 0.9 * max(ys)

    def test_hdfs_degrades(self, fig4):
        ys = fig4.ys("HDFS")
        assert ys[-1] < 0.85 * ys[0]

    def test_bsfs_wins_under_concurrency(self, fig4):
        assert fig4.ys("BSFS")[-1] > 1.3 * fig4.ys("HDFS")[-1]


class TestFigure5:
    def test_near_linear_scaling(self, fig5):
        points = sorted(fig5.series["BSFS"])
        (x0, y0), (xn, yn) = points[0], points[-1]
        per_client_first = y0 / x0
        per_client_last = yn / xn
        assert per_client_last > 0.75 * per_client_first

    def test_aggregate_grows(self, fig5):
        ys = fig5.ys("BSFS")
        assert all(b > a for a, b in zip(ys, ys[1:]))


class TestFigure6a:
    def test_bsfs_faster_everywhere(self, fig6a):
        for b, h in zip(fig6a.ys("BSFS"), fig6a.ys("HDFS")):
            assert b < h

    def test_gain_band(self, fig6a):
        gains = [
            (h - b) / h for b, h in zip(fig6a.ys("BSFS"), fig6a.ys("HDFS"))
        ]
        assert all(0.02 < g < 0.20 for g in gains)  # paper: 7-11%

    def test_gain_grows_with_mapper_size(self, fig6a):
        gains = [
            (h - b) / h for b, h in zip(fig6a.ys("BSFS"), fig6a.ys("HDFS"))
        ]
        assert gains[-1] > gains[0]


class TestFigure6b:
    def test_bsfs_never_meaningfully_slower(self, fig6b):
        # At quick scale small inputs can tie within milliseconds; BSFS
        # must never lose by more than noise.
        for b, h in zip(fig6b.ys("BSFS"), fig6b.ys("HDFS")):
            assert b <= h * 1.01

    def test_bsfs_wins_at_largest_input(self, fig6b):
        assert fig6b.ys("BSFS")[-1] < fig6b.ys("HDFS")[-1]

    def test_completion_grows_with_input(self, fig6b):
        for name in ("BSFS", "HDFS"):
            ys = fig6b.ys(name)
            assert ys[-1] >= ys[0]
