"""Tests for figure rendering."""

from repro.harness import FigureResult, render_chart, render_figure, render_table


def sample_result():
    result = FigureResult(
        figure="4",
        title="Concurrent readers",
        x_label="Clients",
        y_label="MB/s",
        notes="flat vs degrading",
    )
    for x, y in [(1, 70.0), (10, 69.5), (25, 69.0)]:
        result.add("BSFS", x, y)
    for x, y in [(1, 69.0), (10, 42.0), (25, 40.0)]:
        result.add("HDFS", x, y)
    return result


class TestTable:
    def test_columns_and_rows(self):
        table = render_table(sample_result())
        lines = table.splitlines()
        assert "BSFS" in lines[0] and "HDFS" in lines[0]
        assert len(lines) == 2 + 3  # header + rule + 3 x-values

    def test_values_formatted(self):
        table = render_table(sample_result())
        assert "69.50" in table and "42.00" in table

    def test_missing_points_dashed(self):
        result = sample_result()
        result.add("BSFS", 50, 68.0)  # no HDFS point at x=50
        table = render_table(result)
        row = [l for l in table.splitlines() if l.lstrip().startswith("50")][0]
        assert "-" in row.split()[-1]

    def test_ys_sorted_by_x(self):
        result = FigureResult(figure="x", title="t", x_label="x", y_label="y")
        result.add("S", 3, 30.0)
        result.add("S", 1, 10.0)
        assert result.ys("S") == [10.0, 30.0]


class TestChart:
    def test_contains_glyphs_and_legend(self):
        chart = render_chart(sample_result())
        assert "o=BSFS" in chart and "x=HDFS" in chart
        assert "|" in chart

    def test_empty(self):
        empty = FigureResult(figure="z", title="t", x_label="x", y_label="y")
        assert render_chart(empty) == "(no data)"

    def test_single_point(self):
        result = FigureResult(figure="z", title="t", x_label="x", y_label="y")
        result.add("S", 1, 1.0)
        assert "o" in render_chart(result)


class TestFullFigure:
    def test_render_figure_structure(self):
        text = render_figure(sample_result())
        assert text.startswith("=== Figure 4")
        assert "paper: flat vs degrading" in text

    def test_render_without_chart(self):
        text = render_figure(sample_result(), chart=False)
        assert "o=BSFS" not in text
