"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["figure", "3a"])
        assert args.which == "3a" and not args.full

    def test_full_flag(self):
        args = build_parser().parse_args(["figure", "4", "--full", "--seed", "7"])
        assert args.full and args.seed == 7

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9z"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_calibration_dump(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "nic_rate" in out and "client_stream_cap" in out

    def test_figure_3a_quick(self, capsys):
        assert main(["figure", "3a", "--no-chart"]) == 0
        out = capsys.readouterr().out
        assert "=== Figure 3a" in out
        assert "BSFS" in out and "HDFS" in out
        assert "quick scale" in out

    def test_figure_5_with_chart(self, capsys):
        assert main(["figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "o=BSFS" in out
