"""Failure injection in the simulated MapReduce stack.

The paper's jobtracker is "responsible for ... re-executing the failed
tasks" (§II-B); with replication, storage failures are absorbed below
the job level entirely.  These tests kill datanodes mid-job and check
both behaviours.
"""

import pytest

from repro.deploy import JobProfile, deploy_mapreduce
from repro.errors import JobFailed
from repro.util.bytesize import MB

BS = 64 * MB


def profile(max_attempts=3):
    return JobProfile(
        jvm_start=0.2, heartbeat=0.5, job_init=0.5, reduce_time=0.0,
        max_task_attempts=max_attempts,
    )


def run_with_victim(
    replication: int, recover_after: float | None, seed=2, max_attempts=3
):
    """Scan job over HDFS; one datanode dies 0.2 s into the map phase."""
    dep = deploy_mapreduce(
        "hdfs", workers=8, profile=profile(max_attempts), seed=seed,
        replication=replication,
    )
    engine = dep.cluster.engine
    cal = dep.calibration

    def scenario():
        yield from dep.storage.write_file(
            dep.dedicated_client, "/input", 12 * BS,
            produce_rate=cal.client_stream_cap,
        )
        victim = dep.storage.chunk_hosts("/input")[0][0]

        def killer():
            yield engine.timeout(0.5 + 0.2)  # job_init + 0.2s
            dep.cluster.node(victim).fail()
            dep.storage.dn_cores[victim].fail()
            if recover_after is not None:
                yield engine.timeout(recover_after)
                dep.cluster.node(victim).recover()
                dep.storage.dn_cores[victim].recover()

        engine.process(killer())
        elapsed = yield from dep.hadoop.run_scan_job("/input", scan_rate=50 * MB)
        return elapsed

    elapsed = engine.run(engine.process(scenario()))
    return dep, elapsed


class TestStorageFailureDuringJob:
    def test_replicated_job_survives_without_retries(self):
        """Replication 2: the read path fails over; the job never even
        notices the dead datanode."""
        dep, elapsed = run_with_victim(replication=2, recover_after=None)
        assert elapsed > 0
        assert dep.hadoop.last_failures == 0

    def test_unreplicated_transient_failure_retried(self):
        """Replication 1 + the node comes back: failed tasks re-queue
        and succeed on a later attempt."""
        dep, elapsed = run_with_victim(
            replication=1, recover_after=1.0, max_attempts=8
        )
        assert elapsed > 0
        assert dep.hadoop.last_failures > 0

    def test_unreplicated_permanent_failure_fails_job(self):
        """Replication 1 + the node stays dead: the task exhausts its
        attempts and the job aborts."""
        with pytest.raises(JobFailed, match="failed 3 times"):
            run_with_victim(replication=1, recover_after=None)

    def test_failures_counted_per_attempt(self):
        dep, _ = run_with_victim(replication=1, recover_after=1.0, max_attempts=8)
        # At least one task failed at least once; none more than the cap.
        assert 1 <= dep.hadoop.last_failures <= 8 * 12
