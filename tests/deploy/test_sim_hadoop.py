"""Tests for the simulated Hadoop engine over both backends."""

import pytest

from repro.deploy import JobProfile, deploy_mapreduce
from repro.util.bytesize import MB

BS = 64 * MB


def quick_profile():
    return JobProfile(jvm_start=0.5, heartbeat=1.0, job_init=1.0, reduce_time=0.5)


class TestScanJobs:
    @pytest.mark.parametrize("backend", ["bsfs", "hdfs"])
    def test_scan_job_completes(self, backend):
        dep = deploy_mapreduce(backend, workers=8, profile=quick_profile())
        engine = dep.cluster.engine

        def scenario():
            if backend == "bsfs":
                yield from dep.storage.create(dep.dedicated_client, "input")
                yield from dep.storage.write(dep.dedicated_client, "input", 6 * BS, offset=0)
                handle = "input"
            else:
                yield from dep.storage.write_file(dep.dedicated_client, "/input", 6 * BS)
                handle = "/input"
            elapsed = yield from dep.hadoop.run_scan_job(handle, scan_rate=50 * MB)
            return elapsed

        elapsed = engine.run(engine.process(scenario()))
        # 6 blocks over 8 workers, one wave: init + jvm + ~1.3s scan + reduce.
        assert 2.0 < elapsed < 10.0
        assert dep.hadoop.last_local + dep.hadoop.last_remote == 6

    def test_bsfs_balanced_input_fully_local(self):
        dep = deploy_mapreduce("bsfs", workers=8, profile=quick_profile())
        engine = dep.cluster.engine

        def scenario():
            yield from dep.storage.create(dep.dedicated_client, "input")
            yield from dep.storage.write(dep.dedicated_client, "input", 8 * BS, offset=0)
            yield from dep.hadoop.run_scan_job("input", scan_rate=50 * MB)

        engine.run(engine.process(scenario()))
        assert dep.hadoop.last_local == 8
        assert dep.hadoop.last_remote == 0

    def test_hdfs_skewed_input_creates_remote_maps(self):
        dep = deploy_mapreduce("hdfs", workers=8, profile=quick_profile(), seed=5)
        engine = dep.cluster.engine

        def scenario():
            yield from dep.storage.write_file(dep.dedicated_client, "/input", 12 * BS)
            yield from dep.hadoop.run_scan_job("/input", scan_rate=50 * MB)

        engine.run(engine.process(scenario()))
        # Target reuse piles several chunks on few nodes; with 2 slots
        # each, some maps must run remotely.
        assert dep.hadoop.last_remote > 0

    def test_empty_input_rejected(self):
        dep = deploy_mapreduce("bsfs", workers=4, profile=quick_profile())
        engine = dep.cluster.engine

        def scenario():
            yield from dep.storage.create(dep.dedicated_client, "empty")
            with pytest.raises(ValueError, match="empty"):
                yield from dep.hadoop.run_scan_job("empty", scan_rate=50 * MB)
            return True

        assert engine.run(engine.process(scenario()))


class TestWriteJobs:
    @pytest.mark.parametrize("backend", ["bsfs", "hdfs"])
    def test_write_job_produces_files(self, backend):
        dep = deploy_mapreduce(backend, workers=6, profile=quick_profile())
        engine = dep.cluster.engine

        def scenario():
            elapsed = yield from dep.hadoop.run_write_job(
                "/out", num_mappers=4, bytes_per_mapper=2 * BS, generate_rate=40 * MB
            )
            return elapsed

        elapsed = engine.run(engine.process(scenario()))
        assert elapsed > 2 * BS / (40 * MB)  # at least the generation time
        if backend == "bsfs":
            counts = dep.storage.provider_block_counts()
        else:
            counts = dep.storage.datanode_chunk_counts()
        assert sum(counts.values()) == 8  # 4 mappers x 2 blocks

    def test_hdfs_mappers_write_locally(self):
        dep = deploy_mapreduce("hdfs", workers=4, profile=quick_profile())
        engine = dep.cluster.engine

        def scenario():
            yield from dep.hadoop.run_write_job(
                "/out", num_mappers=4, bytes_per_mapper=BS, generate_rate=40 * MB
            )

        engine.run(engine.process(scenario()))
        # Co-deployed tasktracker+datanode: every chunk lands locally,
        # so each of the 4 workers holds exactly its mapper's block.
        counts = dep.storage.datanode_chunk_counts()
        assert sorted(counts.values()) == [1, 1, 1, 1]

    def test_bsfs_wins_on_write_job(self):
        """The Figure 6(a) direction: BSFS completes the same write job
        faster than HDFS."""
        times = {}
        for backend in ("bsfs", "hdfs"):
            dep = deploy_mapreduce(backend, workers=6, profile=quick_profile())
            engine = dep.cluster.engine

            def scenario():
                elapsed = yield from dep.hadoop.run_write_job(
                    "/out", num_mappers=6, bytes_per_mapper=4 * BS,
                    generate_rate=26.5 * MB,
                )
                return elapsed

            times[backend] = engine.run(engine.process(scenario()))
        assert times["bsfs"] < times["hdfs"]

    def test_slots_limit_concurrency(self):
        profile = JobProfile(
            jvm_start=0.0, heartbeat=0.5, job_init=0.0, slots_per_tracker=1
        )
        dep = deploy_mapreduce("bsfs", workers=2, profile=profile)
        engine = dep.cluster.engine

        def scenario():
            elapsed = yield from dep.hadoop.run_write_job(
                "/out", num_mappers=4, bytes_per_mapper=BS, generate_rate=64 * MB
            )
            return elapsed

        elapsed = engine.run(engine.process(scenario()))
        # 4 one-second tasks on 2 single-slot trackers: at least 2 rounds.
        assert elapsed >= 2.0
