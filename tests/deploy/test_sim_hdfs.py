"""Tests for the simulated HDFS deployment."""

import pytest

from repro.blob.block import BytesPayload
from repro.deploy import Calibration, SimHDFS
from repro.simulation import NodeSpec, SimCluster
from repro.util.bytesize import MB

BS = 1024


def make_deployment(n_datanodes=6, target_reuse=None, block_size=BS, **hdfs_kwargs):
    if target_reuse is not None:
        cal = Calibration(block_size=block_size, hdfs_target_reuse=target_reuse)
    else:
        cal = Calibration(block_size=block_size)
    cluster = SimCluster(latency=cal.latency)
    spec = NodeSpec(nic_rate=cal.nic_rate, disk=cal.disk)
    nn = cluster.add_node("namenode", spec)
    datanodes = cluster.add_nodes("dn", n_datanodes, spec)
    client = cluster.add_node("client", spec)
    hdfs = SimHDFS(
        cluster,
        datanode_nodes=datanodes,
        namenode_node=nn,
        calibration=cal,
        **hdfs_kwargs,
    )
    return cluster, hdfs, client


class TestSimHdfsProtocol:
    def test_write_read_roundtrip(self):
        cluster, hdfs, client = make_deployment()
        data = bytes(i % 256 for i in range(3 * BS))

        def scenario():
            yield from hdfs.write_file(client, "/f", BytesPayload(data))
            result = yield from hdfs.read(client, "/f")
            return result.size

        assert cluster.engine.run(cluster.engine.process(scenario())) == len(data)

    def test_chunks_sequential_not_parallel(self):
        """HDFS streams one chunk pipeline at a time: 4 chunks take
        about 4x one chunk's stream plus stalls."""
        cluster, hdfs, client = make_deployment()

        def scenario():
            t0 = cluster.engine.now
            yield from hdfs.write_file(client, "/f", 4 * BS)
            return cluster.engine.now - t0

        elapsed = cluster.engine.run(cluster.engine.process(scenario()))
        per_chunk = BS / hdfs.datanode_ingest + hdfs.chunk_stall
        assert elapsed == pytest.approx(4 * per_chunk, rel=0.2)

    def test_ingest_cap_slows_chunk_stream(self):
        cluster, hdfs, client = make_deployment(block_size=64 * MB)

        def scenario():
            yield from hdfs.write_file(client, "/f", 64 * MB)
            return cluster.engine.now

        t = cluster.engine.run(cluster.engine.process(scenario()))
        # Must be slower than wire speed: the ingest ceiling dominates.
        assert t > 64 * MB / hdfs.datanode_ingest

    def test_local_first_placement(self):
        cluster, hdfs, _ = make_deployment()
        writer = cluster.node("dn-002")  # colocated with a datanode

        def scenario():
            yield from hdfs.write_file(writer, "/local", 4 * BS)

        cluster.engine.run(cluster.engine.process(scenario()))
        counts = hdfs.datanode_chunk_counts()
        assert counts["dn-002"] == 4

    def test_target_reuse_clusters_chunks(self):
        cluster, hdfs, client = make_deployment(n_datanodes=20, target_reuse=4)

        def scenario():
            yield from hdfs.write_file(client, "/f", 8 * BS)

        cluster.engine.run(cluster.engine.process(scenario()))
        hosts = [h[0] for h in hdfs.chunk_hosts("/f")]
        # Runs of 4: 8 chunks land on exactly 2 (or occasionally 1) nodes.
        assert len(set(hosts)) <= 3
        assert hosts[0] == hosts[1] == hosts[2] == hosts[3]

    def test_replication_pipeline(self):
        cluster, hdfs, client = make_deployment(n_datanodes=4, replication=2)

        def scenario():
            yield from hdfs.write_file(client, "/f", 2 * BS)

        cluster.engine.run(cluster.engine.process(scenario()))
        assert sum(hdfs.datanode_chunk_counts().values()) == 4
        for hosts in hdfs.chunk_hosts("/f"):
            assert len(set(hosts)) == 2

    def test_read_failover(self):
        cluster, hdfs, client = make_deployment(n_datanodes=4, replication=2)

        def scenario():
            yield from hdfs.write_file(client, "/f", BytesPayload(b"x" * BS))
            primary = hdfs.chunk_hosts("/f")[0][0]
            cluster.node(primary).online = False
            result = yield from hdfs.read(client, "/f")
            return result.size

        assert cluster.engine.run(cluster.engine.process(scenario())) == BS

    def test_single_writer_semantics_in_sim(self):
        cluster, hdfs, client = make_deployment()
        other = cluster.node("dn-000")

        def scenario():
            yield from hdfs.write_file(client, "/f", BS)
            # Second create on the same path must be refused.
            from repro.errors import FileAlreadyExists

            with pytest.raises(FileAlreadyExists):
                yield from hdfs.write_file(other, "/f", BS)
            return True

        assert cluster.engine.run(cluster.engine.process(scenario()))
