"""The availability weakness the paper acknowledges (§VI-B).

"The centralized managers represent single points of failure" — and at
the protocol level, a writer that dies *between* version assignment and
commit wedges the publication watermark: later versions commit but can
never be revealed, because reveal order must follow assignment order
(§III-A.4).  These tests pin that negative space down explicitly.
"""

import pytest

from repro.blob.block import BytesPayload
from repro.deploy import Calibration, SimBlobSeer
from repro.errors import ProviderUnavailable
from repro.simulation import NodeSpec, SimCluster

BS = 1024


def make_deployment(n_providers=4):
    cal = Calibration(block_size=BS)
    cluster = SimCluster(latency=cal.latency)
    spec = NodeSpec(nic_rate=cal.nic_rate, disk=cal.disk)
    vm = cluster.add_node("vm", spec)
    pm = cluster.add_node("pm", spec)
    ns = cluster.add_node("ns", spec)
    mdps = cluster.add_nodes("mdp", 2, spec)
    providers = cluster.add_nodes("dp", n_providers, spec)
    client = cluster.add_node("client", spec)
    blobseer = SimBlobSeer(
        cluster,
        provider_nodes=providers,
        metadata_nodes=mdps,
        version_manager_node=vm,
        provider_manager_node=pm,
        namespace_node=ns,
        calibration=cal,
    )
    return cluster, blobseer, client


class TestWedgedWatermark:
    def test_dead_writer_blocks_later_publications(self):
        cluster, blobseer, client = make_deployment()
        engine = cluster.engine

        def scenario():
            yield from blobseer.create(client, "b")
            # Writer A takes version 1 and dies before committing.
            blobseer.vm_core.assign_append("b", BS)
            # Writer B runs the full protocol and gets version 2.
            v2 = yield from blobseer.append(client, "b", BytesPayload(b"x" * BS))
            assert v2 == 2
            # Version 2 is committed but NOT published: the watermark
            # cannot pass the dead writer's version 1.
            assert blobseer.vm_core.blob("b").committed >= {2}
            assert blobseer.vm_core.published_version("b") == 0
            latest = blobseer.vm_core.latest("b")
            assert latest.version == 0 and latest.size == 0
            return True

        assert engine.run(engine.process(scenario()))

    def test_wait_published_never_fires_while_wedged(self):
        cluster, blobseer, client = make_deployment()
        engine = cluster.engine
        observed = []

        def scenario():
            yield from blobseer.create(client, "b")
            blobseer.vm_core.assign_append("b", BS)  # dead writer: v1
            yield from blobseer.append(client, "b", BytesPayload(b"x" * BS))

            def waiter():
                yield blobseer.wait_published("b", 2)
                observed.append(engine.now)

            engine.process(waiter())
            yield engine.timeout(60.0)  # plenty of simulated time
            return True

        assert engine.run(engine.process(scenario()))
        assert observed == []  # still wedged after a minute

    def test_failed_block_write_fails_whole_write_cleanly(self):
        """'If, for some reason, writing of a block fails, then the
        whole write fails' (§III-D) — and since the failure precedes
        version assignment, nothing wedges."""
        cluster, blobseer, client = make_deployment(n_providers=2)
        engine = cluster.engine

        def scenario():
            yield from blobseer.create(client, "b")
            # Kill the provider round-robin will pick first.
            cluster.node("dp-000").online = False
            with pytest.raises(ProviderUnavailable):
                yield from blobseer.append(client, "b", BytesPayload(b"x" * BS))
            # No version was assigned; the blob is pristine and a
            # subsequent write (on the live provider) publishes fine.
            assert blobseer.vm_core.blob("b").last_assigned == 0
            version = yield from blobseer.append(
                client, "b", BytesPayload(b"y" * BS)
            )
            assert version == 1
            assert blobseer.vm_core.published_version("b") == 1
            return True

        assert engine.run(engine.process(scenario()))
