"""Tests for speculative execution in the simulated Hadoop engine."""

from repro.deploy import JobProfile, deploy_mapreduce
from repro.util.bytesize import MB

BS = 64 * MB


def profile(speculative):
    return JobProfile(
        jvm_start=0.2,
        heartbeat=0.5,
        job_init=0.5,
        reduce_time=0.0,
        speculative=speculative,
        speculative_slowdown=1.3,
    )


def straggler_setup(speculative: bool, seed=4):
    """Heterogeneous cluster (the setting of the paper's ref [17]):

    one tasktracker's NIC is degraded to 8 MB/s, so every remote-input
    map it takes becomes a straggler; speculation duplicates those maps
    onto healthy nodes, and the duplicate finishes first.
    """
    dep = deploy_mapreduce(
        "hdfs", workers=16, profile=profile(speculative), seed=seed
    )
    # Degrade one worker after deployment (heterogeneity injection).
    dep.cluster.network.set_node_rates("worker-000", ingress=8 * MB)
    engine = dep.cluster.engine
    cal = dep.calibration

    def scenario():
        yield from dep.storage.write_file(
            dep.dedicated_client, "/input", 24 * BS,
            produce_rate=cal.client_stream_cap,
        )
        elapsed = yield from dep.hadoop.run_scan_job("/input", scan_rate=50 * MB)
        return elapsed

    elapsed = engine.run(engine.process(scenario()))
    return dep, elapsed


class TestSpeculation:
    def test_disabled_by_default(self):
        dep, _ = straggler_setup(speculative=False)
        assert dep.hadoop.last_speculative == 0

    def test_speculative_attempts_launched_on_stragglers(self):
        dep, _ = straggler_setup(speculative=True)
        assert dep.hadoop.last_speculative > 0

    def test_speculation_never_slower(self):
        _, plain = straggler_setup(speculative=False)
        _, spec = straggler_setup(speculative=True)
        assert spec <= plain * 1.02

    def test_speculation_helps_under_heavy_skew(self):
        """Duplicating straggler reads onto idle nodes shortens the
        makespan when hot datanodes throttle the originals."""
        _, plain = straggler_setup(speculative=False)
        _, spec = straggler_setup(speculative=True)
        assert spec < plain

    def test_all_tasks_complete_exactly_once(self):
        dep, _ = straggler_setup(speculative=True)
        assert dep.hadoop.last_local + dep.hadoop.last_remote == 24

    def test_no_speculation_without_stragglers(self):
        """A balanced BSFS job finishes in one homogeneous wave — no
        attempt ever looks slow enough to duplicate."""
        dep = deploy_mapreduce("bsfs", workers=16, profile=profile(True))
        engine = dep.cluster.engine

        def scenario():
            yield from dep.storage.create(dep.dedicated_client, "input")
            yield from dep.storage.write(
                dep.dedicated_client, "input", 16 * BS, offset=0
            )
            yield from dep.hadoop.run_scan_job("input", scan_rate=50 * MB)

        engine.run(engine.process(scenario()))
        assert dep.hadoop.last_speculative == 0
