"""Tests for the simulated BlobSeer deployment.

These run the real distributed protocol (RPCs, parallel block flows,
version assignment, metadata weaving, publication gates) inside the
DES — with real byte payloads where content is checked.
"""

import pytest

from repro.blob.block import BytesPayload
from repro.deploy import Calibration, SimBlobSeer
from repro.simulation import NodeSpec, SimCluster
from repro.util.bytesize import MB

BS = 1024  # small sim block size keeps payloads cheap


def make_deployment(
    n_providers=6,
    n_mdp=3,
    placement="round_robin",
    block_size=BS,
    metadata_replication=1,
):
    cal = Calibration(block_size=block_size)
    cluster = SimCluster(latency=cal.latency)
    spec = NodeSpec(nic_rate=cal.nic_rate, disk=cal.disk)
    vm = cluster.add_node("vm", spec)
    pm = cluster.add_node("pm", spec)
    ns = cluster.add_node("ns", spec)
    mdps = cluster.add_nodes("mdp", n_mdp, spec)
    providers = cluster.add_nodes("dp", n_providers, spec)
    client = cluster.add_node("client", spec)
    blobseer = SimBlobSeer(
        cluster,
        provider_nodes=providers,
        metadata_nodes=mdps,
        version_manager_node=vm,
        provider_manager_node=pm,
        namespace_node=ns,
        calibration=cal,
        placement=placement,
        metadata_replication=metadata_replication,
    )
    return cluster, blobseer, client


class TestSimProtocol:
    def test_create_write_read_roundtrip_real_bytes(self):
        cluster, blobseer, client = make_deployment()
        data = bytes(i % 256 for i in range(3 * BS))

        def scenario():
            yield from blobseer.create(client, "b")
            version = yield from blobseer.write(
                client, "b", BytesPayload(data), offset=0
            )
            assert version == 1
            result = yield from blobseer.read(client, "b")
            return result.tobytes()

        out = cluster.engine.run(cluster.engine.process(scenario()))
        assert out == data

    def test_appends_accumulate(self):
        cluster, blobseer, client = make_deployment()

        def scenario():
            yield from blobseer.create(client, "b")
            yield from blobseer.append(client, "b", BytesPayload(b"a" * BS))
            yield from blobseer.append(client, "b", BytesPayload(b"b" * BS))
            result = yield from blobseer.read(client, "b")
            return result.tobytes()

        out = cluster.engine.run(cluster.engine.process(scenario()))
        assert out == b"a" * BS + b"b" * BS

    def test_old_version_readable(self):
        cluster, blobseer, client = make_deployment()

        def scenario():
            yield from blobseer.create(client, "b")
            yield from blobseer.write(client, "b", BytesPayload(b"1" * BS), offset=0)
            yield from blobseer.write(client, "b", BytesPayload(b"2" * BS), offset=0)
            old = yield from blobseer.read(client, "b", version=1)
            new = yield from blobseer.read(client, "b", version=2)
            return old.tobytes(), new.tobytes()

        old, new = cluster.engine.run(cluster.engine.process(scenario()))
        assert old == b"1" * BS and new == b"2" * BS

    def test_synthetic_write_costs_simulated_time(self):
        cluster, blobseer, client = make_deployment(block_size=64 * MB)

        def scenario():
            yield from blobseer.create(client, "b")
            yield from blobseer.write(client, "b", 64 * MB, offset=0)
            return cluster.engine.now

        t = cluster.engine.run(cluster.engine.process(scenario()))
        # 64 MB over a 117.5 MB/s NIC: at least 0.54 s of simulated time.
        assert t > 0.5

    def test_produce_rate_bounds_write_time(self):
        cluster, blobseer, client = make_deployment(block_size=64 * MB)
        cap = 70 * MB

        def scenario():
            yield from blobseer.create(client, "b")
            yield from blobseer.write(client, "b", 64 * MB, offset=0, produce_rate=cap)
            return cluster.engine.now

        t = cluster.engine.run(cluster.engine.process(scenario()))
        assert t == pytest.approx(64 * MB / cap, rel=0.05)

    def test_round_robin_layout(self):
        cluster, blobseer, client = make_deployment(n_providers=6)

        def scenario():
            yield from blobseer.create(client, "b")
            yield from blobseer.write(client, "b", BytesPayload(b"z" * 6 * BS), offset=0)

        cluster.engine.run(cluster.engine.process(scenario()))
        counts = blobseer.provider_block_counts()
        assert set(counts.values()) == {1}
        hosts = blobseer.block_hosts("b")
        assert len({h[0] for h in hosts}) == 6

    def test_namespace_roundtrip(self):
        cluster, blobseer, client = make_deployment()

        def scenario():
            yield from blobseer.create(client, "b7")
            yield from blobseer.register_file(client, "/data/f", "b7")
            blob_id = yield from blobseer.lookup_file(client, "/data/f")
            return blob_id

        assert cluster.engine.run(cluster.engine.process(scenario())) == "b7"


class TestConcurrencySemantics:
    def test_concurrent_appends_serialize_versions_not_data(self):
        """N concurrent appenders: all versions distinct, all data lands;
        data transfers overlap (the §III-D claim)."""
        cluster, blobseer, client = make_deployment(n_providers=8)
        clients = [cluster.node(f"dp-00{i}") for i in range(4)]
        versions = []

        def appender(node, tag):
            v = yield from blobseer.append(
                node, "shared", BytesPayload(bytes([tag]) * BS)
            )
            versions.append(v)

        def scenario():
            yield from blobseer.create(client, "shared")
            procs = [
                cluster.engine.process(appender(node, i + 1))
                for i, node in enumerate(clients)
            ]
            yield cluster.engine.all_of(procs)
            result = yield from blobseer.read(client, "shared")
            return result.tobytes()

        data = cluster.engine.run(cluster.engine.process(scenario()))
        assert sorted(versions) == [1, 2, 3, 4]
        blocks = sorted(data[i * BS : (i + 1) * BS][0] for i in range(4))
        assert blocks == [1, 2, 3, 4]

    def test_appends_overlap_in_time(self):
        """4 concurrent 64 MB appends must take far less than 4x one
        append (lock-free data path)."""
        cluster, blobseer, client = make_deployment(n_providers=8, block_size=64 * MB)
        engine = cluster.engine
        clients = [cluster.node(f"dp-00{i}") for i in range(4)]

        def one(node):
            yield from blobseer.append(node, "shared", 64 * MB)

        def scenario():
            yield from blobseer.create(client, "shared")
            t0 = engine.now
            procs = [engine.process(one(node)) for node in clients]
            yield engine.all_of(procs)
            return engine.now - t0

        elapsed = engine.run(engine.process(scenario()))
        single = 64 * MB / (117.5 * MB)
        assert elapsed < 2.0 * single  # near-parallel, not 4x

    def test_publication_respects_version_order(self):
        """A reader waiting for version 2 wakes only after versions 1
        and 2 are both committed (linearizability gate)."""
        cluster, blobseer, client = make_deployment()
        engine = cluster.engine
        log = []

        def slow_then_fast():
            yield from blobseer.create(client, "b")
            # Two appends race; the second (version 2) is smaller and
            # commits its data faster, but cannot publish before 1.
            big = engine.process(
                blobseer.append(client, "b", 8 * BS), name="big"
            )
            yield engine.timeout(1e-6)
            small = engine.process(
                blobseer.append(cluster.node("dp-000"), "b", BS), name="small"
            )

            def waiter():
                yield blobseer.wait_published("b", 2)
                log.append(("published2", blobseer.vm_core.published_version("b")))

            wait_proc = engine.process(waiter())
            yield engine.all_of([big, small, wait_proc])

        engine.run(engine.process(slow_then_fast()))
        assert log == [("published2", 2)]


class TestFailureInjection:
    def test_read_fails_over_to_replica(self):
        cluster, blobseer, client = make_deployment(n_providers=4)

        def scenario():
            yield from blobseer.create(client, "b", replication=2)
            yield from blobseer.write(
                client, "b", BytesPayload(b"r" * BS), offset=0, replication=2
            )
            hosts = blobseer.block_hosts("b")[0]
            cluster.node(hosts[0]).online = False
            result = yield from blobseer.read(client, "b")
            return result.tobytes()

        assert cluster.engine.run(cluster.engine.process(scenario())) == b"r" * BS

    def test_unreplicated_read_fails(self):
        from repro.errors import ProviderUnavailable

        cluster, blobseer, client = make_deployment(n_providers=4)

        def scenario():
            yield from blobseer.create(client, "b")
            yield from blobseer.write(client, "b", BytesPayload(b"r" * BS), offset=0)
            hosts = blobseer.block_hosts("b")[0]
            cluster.node(hosts[0]).online = False
            with pytest.raises(ProviderUnavailable):
                yield from blobseer.read(client, "b")
            return True

        assert cluster.engine.run(cluster.engine.process(scenario()))


class TestSimAntiEntropy:
    def test_scrub_metadata_refeeds_lagging_replica(self):
        cluster, blobseer, client = make_deployment(n_mdp=4, metadata_replication=2)
        data = bytes(i % 256 for i in range(4 * BS))

        def scenario():
            yield from blobseer.create(client, "b")
            yield from blobseer.write(client, "b", BytesPayload(data), offset=0)
            return True

        assert cluster.engine.run(cluster.engine.process(scenario()))

        # Simulate a bucket that lost a put (down during the write):
        # drop one replica of every key it co-owns.
        dropped = 0
        for name, bucket in blobseer.md_buckets.items():
            for key in list(bucket):
                if blobseer.ring.replicas(key, 2)[1] == name:
                    del bucket[key]
                    dropped += 1
            break
        report = blobseer.scrub_metadata()
        assert report["replicas_healed"] == dropped
        assert blobseer.scrub_metadata()["replicas_healed"] == 0  # converged

        # Every owner now holds every key it is responsible for.
        for name, bucket in blobseer.md_buckets.items():
            for key in bucket:
                for owner in blobseer.ring.replicas(key, 2):
                    assert key in blobseer.md_buckets[owner]

    def test_scrub_metadata_noop_on_healthy_deployment(self):
        cluster, blobseer, client = make_deployment(n_mdp=3, metadata_replication=2)

        def scenario():
            yield from blobseer.create(client, "b")
            yield from blobseer.write(client, "b", BytesPayload(b"x" * BS), offset=0)
            return True

        assert cluster.engine.run(cluster.engine.process(scenario()))
        report = blobseer.scrub_metadata()
        assert report["keys_checked"] > 0
        assert report["replicas_healed"] == 0


class TestGroupCommitWindow:
    """The deploy-layer group commit (DESIGN.md §10): completion
    reports arriving within one window ride a single commit_batch RPC,
    counted by ``vman_rpcs`` — the write-path twin of ``meta_rpcs``."""

    def _deployment(self, commit_window):
        cal = Calibration(block_size=BS)
        cluster = SimCluster(latency=cal.latency)
        spec = NodeSpec(nic_rate=cal.nic_rate, disk=cal.disk)
        vm = cluster.add_node("vm", spec)
        pm = cluster.add_node("pm", spec)
        ns = cluster.add_node("ns", spec)
        mdps = cluster.add_nodes("mdp", 3, spec)
        providers = cluster.add_nodes("dp", 6, spec)
        clients = cluster.add_nodes("client", 8, spec)
        blobseer = SimBlobSeer(
            cluster,
            provider_nodes=providers,
            metadata_nodes=mdps,
            version_manager_node=vm,
            provider_manager_node=pm,
            namespace_node=ns,
            calibration=cal,
            commit_window=commit_window,
        )
        return cluster, blobseer, clients

    def _run_appends(self, commit_window, n_clients=8):
        cluster, blobseer, clients = self._deployment(commit_window)

        def scenario():
            yield from blobseer.create(clients[0], "b")
            before = blobseer.vman_rpcs
            procs = [
                blobseer.engine.process(
                    blobseer.append(c, "b", BytesPayload(bytes([65 + i]) * BS))
                )
                for i, c in enumerate(clients[:n_clients])
            ]
            yield blobseer.engine.all_of(procs)
            return blobseer.vman_rpcs - before

        rpcs = cluster.engine.run(cluster.engine.process(scenario()))
        assert blobseer.vm_core.published_version("b") == n_clients
        return rpcs, blobseer, clients, cluster

    def test_per_writer_commits_cost_one_rpc_each(self):
        rpcs, *_ = self._run_appends(commit_window=None)
        assert rpcs == 2 * 8  # one assign + one commit RPC per writer

    def test_window_coalesces_commits_into_batched_rpcs(self):
        rpcs, blobseer, clients, cluster = self._run_appends(commit_window=1e-3)
        # 8 assigns (still the serialization point) + O(batches)
        # commit_batch RPCs — strictly fewer than one per writer.
        assert 8 < rpcs < 2 * 8
        # The batched publication is correct: every version readable,
        # bytes identical to the per-writer protocol's result.
        def read_scenario():
            payload = yield from blobseer.read(clients[0], "b")
            return payload.size
        size = cluster.engine.run(cluster.engine.process(read_scenario()))
        assert size == 8 * BS

    def test_window_preserves_publication_order(self):
        _, blobseer, clients, cluster = self._run_appends(commit_window=2e-3)
        # Watermark advanced over a contiguous prefix: every version
        # 1..8 is published and readable at its own snapshot size.
        for version in range(1, 9):
            info = blobseer.vm_core.snapshot_info("b", version)
            assert info.size == version * BS

    def test_failed_batch_rpc_reaches_every_parked_writer(self):
        """A dying commit_batch RPC must fail each windowed writer —
        never strand the batch (the per-writer path would have handed
        each of them the same failure)."""
        cluster, blobseer, clients = self._deployment(commit_window=1e-3)

        def boom(items):
            raise RuntimeError("injected: version manager crashed")

        def guarded(c):
            # Each writer must OBSERVE the failure itself: a stranded
            # append would leave its process pending forever.
            try:
                yield from blobseer.append(c, "b", BytesPayload(b"x" * BS))
                return None
            except RuntimeError as exc:
                return exc

        def scenario():
            yield from blobseer.create(clients[0], "b")
            blobseer.vm_core.commit_batch = boom
            procs = [
                blobseer.engine.process(guarded(c)) for c in clients[:4]
            ]
            results = yield blobseer.engine.all_of(procs)
            return [results[p] for p in procs]

        outcomes = cluster.engine.run(cluster.engine.process(scenario()))
        assert len(outcomes) == 4
        assert all("injected" in str(exc) for exc in outcomes)
