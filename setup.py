"""Shim for legacy editable installs (environments without the `wheel` package).

All real metadata lives in pyproject.toml; this file only lets
``pip install -e . --no-use-pep517`` work offline.
"""

from setuptools import setup

setup()
