#!/usr/bin/env python3
"""Incremental reprocessing with snapshot diffs (paper §VI-A).

"In many such scenarios, datasets are only locally altered from one
Map/Reduce pass to another."  BlobSeer's versioned metadata makes the
*locally* part queryable: :func:`repro.blob.changed_ranges` compares
two snapshots' segment trees and returns exactly the block ranges that
differ — without reading a byte of data.  A consumer job can then
rescan only those ranges instead of the whole dataset.

Run:  python examples/incremental_processing.py
"""

from repro.blob import LocalBlobStore, StoreConfig, changed_ranges
from repro.bsfs import BSFSFileSystem

BS = 4096


def count_needles(fs, path, version, offset=0, size=None):
    """Scan (a slice of) one pinned snapshot for 'needle' lines."""
    stream = fs.open(path, version=version)
    if size is None:
        size = stream.size - offset
    return stream.pread(offset, size).count(b"needle")


def main() -> None:
    fs = BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=6, metadata_providers=2, block_size=BS))
    )

    # Pass 1: a large-ish dataset, scanned fully once.
    body = (b"hay needle hay " * 53 + b"\n") * 60  # ~48 KB -> 12 blocks
    fs.write_file("/data/corpus", body)
    v1 = fs.file_versions("/data/corpus")
    total = count_needles(fs, "/data/corpus", v1)
    print(f"pass 1: full scan of {fs.status('/data/corpus').size} bytes, "
          f"{total} needles")

    # The dataset is *locally* altered: one interior block rewritten.
    blob = fs.blob_of("/data/corpus")
    patch = (b"needle " * BS)[:BS]  # exactly one block of needles
    fs.store.write(blob, 5 * BS, patch)
    v2 = fs.file_versions("/data/corpus")

    # Pass 2: ask the metadata which ranges moved, rescan only those.
    ranges = changed_ranges(fs.store, blob, v1, v2)
    print(f"pass 2: metadata diff reports changed blocks {ranges}")
    assert len(ranges) == 1 and ranges[0].blocks == 1

    size_v2 = fs.store.snapshot(blob, v2).size
    margin = len(b"needle") - 1  # tokens may straddle block boundaries
    delta = 0
    rescanned = 0
    for rng in ranges:
        offset, length = rng.to_bytes(BS, size_v2)
        lo = max(0, offset - margin)
        hi = min(size_v2, offset + length + margin)
        old = count_needles(fs, "/data/corpus", v1, lo, hi - lo)
        new = count_needles(fs, "/data/corpus", v2, lo, hi - lo)
        delta += new - old
        rescanned += hi - lo
    incremental_total = total + delta

    full_rescan = count_needles(fs, "/data/corpus", v2)
    assert incremental_total == full_rescan
    print(
        f"pass 2: rescanned {rescanned} bytes instead of "
        f"{size_v2} ({rescanned / size_v2:.0%}) and got the same answer: "
        f"{incremental_total} needles"
    )
    print("\nincremental processing OK")


if __name__ == "__main__":
    main()
