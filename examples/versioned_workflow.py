#!/usr/bin/env python3
"""Leveraging versioning across MapReduce passes (paper §VI-A).

The paper's future-work vision: "writing parts of the dataset while
still being able to access the original dataset (thanks to versioning)
could save a lot of temporary storage space."  BSFS already supports
it: a job reads a *pinned snapshot* of its input while another job
appends to the same file — no copy, no temporary files, and the
concurrent appenders never block the readers.

Run:  python examples/versioned_workflow.py
"""

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem
from repro.mapreduce import LocalJobRunner
from repro.mapreduce.apps import grep_job


def grep_count(fs, path: str, pattern: str, out: str) -> int:
    result = LocalJobRunner(fs).run(grep_job([path], out, pattern))
    content = fs.read_file(result.output_paths[0]).decode().strip()
    return int(content.split("\t")[1]) if content else 0


def main() -> None:
    fs = BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=6, metadata_providers=2, block_size=4096))
    )

    # Pass 1 produces a dataset.
    fs.write_file("/data/events.log", b"event ok\nevent FAIL\nevent ok\n" * 500)
    v1 = fs.file_versions("/data/events.log")
    fails_v1 = grep_count(fs, "/data/events.log", "FAIL", "/reports/pass1")
    print(f"pass 1: dataset at version {v1}, {fails_v1} FAIL lines")

    # A reader pins the pass-1 snapshot...
    pinned = fs.open("/data/events.log", version=v1)

    # ...while pass 2 appends new events to the very same file.
    with fs.append("/data/events.log") as out:
        out.write(b"event FAIL late\n" * 250)
    v2 = fs.file_versions("/data/events.log")
    print(f"pass 2: appended; dataset now at version {v2}")

    # The pinned reader still sees exactly the pass-1 bytes.
    assert pinned.size < fs.status("/data/events.log").size
    assert b"late" not in pinned.read()
    print("pinned reader is isolated from the append (snapshot semantics)")

    # Jobs can target either version explicitly.
    fails_v2 = grep_count(fs, "/data/events.log", "FAIL", "/reports/pass2")
    assert fails_v2 == fails_v1 + 250
    print(f"re-grep on the evolved dataset: {fails_v2} FAIL lines")

    # Storage accounting: the old snapshot shares every unchanged block
    # with the new one — versioning costs only the differential patch.
    store = fs.store
    blob = fs.blob_of("/data/events.log")
    new_size = store.snapshot(blob, version=v2).size
    old_size = store.snapshot(blob, version=v1).size
    stored = sum(p.stored_bytes for p in store.providers.values())
    assert stored < old_size + new_size  # far less than two full copies
    print(
        f"stored bytes {stored} < v1+v2 sizes {old_size + new_size} "
        "(differential snapshots, §III-A.1)"
    )

    # Branching (§II-A): fork the dataset into an independent line,
    # zero-copy, and let an experiment mutate the fork freely.
    fs.branch_file("/data/events.log", "/experiments/whatif.log")
    with fs.append("/experiments/whatif.log") as out:
        out.write(b"event FAIL synthetic\n" * 100)
    fails_fork = grep_count(fs, "/experiments/whatif.log", "FAIL", "/reports/fork")
    assert fails_fork == fails_v2 + 100
    assert grep_count(fs, "/data/events.log", "FAIL", "/reports/main") == fails_v2
    print(
        f"branched fork sees {fails_fork} FAILs; the main line still {fails_v2} "
        "(zero-copy branch, §II-A)"
    )
    print("\nversioned workflow OK")


if __name__ == "__main__":
    main()
