#!/usr/bin/env python3
"""MapReduce on BSFS vs HDFS: same job, both backends, identical output.

The paper's integration claim (§IV): Hadoop jobs run "out-of-the-box"
when BSFS replaces HDFS.  This example runs WordCount — splits, locality
scheduling, map, combine, shuffle, sort, reduce — against both file
systems and compares results and map locality.

Run:  python examples/mapreduce_wordcount.py
"""

from repro.blob import LocalBlobStore, StoreConfig
from repro.bsfs import BSFSFileSystem
from repro.hdfs import HDFSFileSystem
from repro.mapreduce import LocalJobRunner
from repro.mapreduce.apps import wordcount_job

TEXT = (
    b"the storage layer must sustain a high throughput\n"
    b"under heavy access concurrency to the same file\n"
    b"the version manager is the only serialization point\n"
) * 2000  # ~300 KB


def run_on(name: str, fs, trackers) -> tuple[dict, float]:
    fs.write_file("/input/corpus.txt", TEXT, client="edge-node")
    runner = LocalJobRunner(fs, trackers=trackers, slots_per_tracker=2)
    result = runner.run(wordcount_job(["/input"], "/out", num_reducers=3))
    counts = {}
    for path in result.output_paths:
        for line in fs.read_file(path).decode().splitlines():
            word, n = line.split("\t")
            counts[word] = int(n)
    print(
        f"{name:>5}: {result.counters['maps_total']} maps "
        f"({result.counters['maps_local']} local / "
        f"{result.counters['maps_remote']} remote), "
        f"{result.counters['reduce_records_in']} shuffled records, "
        f"{len(counts)} distinct words"
    )
    return counts, result.locality


def main() -> None:
    # 16 KB blocks so the demo file splits into many map tasks.
    bsfs = BSFSFileSystem(
        store=LocalBlobStore(config=StoreConfig(data_providers=6, metadata_providers=2, block_size=16384))
    )
    hdfs = HDFSFileSystem(datanodes=6, block_size=16384, seed=3)

    # Trackers co-located with the storage daemons, as in the paper.
    bsfs_counts, bsfs_locality = run_on("BSFS", bsfs, list(bsfs.store.providers))
    hdfs_counts, hdfs_locality = run_on("HDFS", hdfs, list(hdfs.datanodes))

    assert bsfs_counts == hdfs_counts, "backends must agree bit-for-bit"
    print(f"\noutputs identical across backends ({len(bsfs_counts)} words)")
    print(f"locality: BSFS {bsfs_locality:.0%} vs HDFS {hdfs_locality:.0%}")
    print(f"'the' appears {bsfs_counts['the']} times")


if __name__ == "__main__":
    main()
