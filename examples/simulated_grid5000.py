#!/usr/bin/env python3
"""Drive the simulated Grid'5000 platform directly (paper §V).

Reproduces a slice of the paper's evaluation interactively: deploys
BSFS and HDFS on a simulated cluster, runs the concurrent-reader
microbenchmark (Figure 4's access pattern) and a distributed-grep job
(Figure 6(b)'s), and prints the head-to-head numbers.

Run:  python examples/simulated_grid5000.py
"""

from repro.deploy import deploy_mapreduce
from repro.harness import GREP_SCAN_RATE, concurrent_readers, single_writer
from repro.util.bytesize import GB, MB

NODES = 80  # a modest slice of the paper's 270-node cluster


def microbenchmarks() -> None:
    print("=== single writer (Figure 3(a) pattern) ===")
    for backend in ("hdfs", "bsfs"):
        result = single_writer(backend, n_blocks=24, total_nodes=NODES)
        print(
            f"  {backend.upper():>4}: {result.throughput / MB:6.1f} MB/s, "
            f"layout unbalance {result.unbalance:.0f}"
        )

    print("\n=== 32 concurrent readers, shared file (Figure 4 pattern) ===")
    for backend in ("hdfs", "bsfs"):
        result = concurrent_readers(backend, n_clients=32, total_nodes=NODES)
        print(
            f"  {backend.upper():>4}: {result.mean_client_throughput / MB:6.1f} MB/s "
            f"per client (slowest {result.min_client_throughput / MB:.1f})"
        )


def grep_job() -> None:
    print("\n=== distributed grep over 3.2 GB (Figure 6(b) pattern) ===")
    times = {}
    for backend in ("hdfs", "bsfs"):
        deployment = deploy_mapreduce(backend, workers=60, metadata_providers=10)
        engine = deployment.cluster.engine
        storage = deployment.storage
        client = deployment.dedicated_client
        cal = deployment.calibration
        n_blocks = int(3.2 * GB // cal.block_size)

        def scenario():
            if backend == "bsfs":
                yield from storage.create(client, "input")
                for _ in range(n_blocks):
                    yield from storage.append(
                        client, "input", cal.block_size,
                        produce_rate=cal.client_stream_cap,
                    )
                handle = "input"
            else:
                yield from storage.write_file(
                    client, "/input", n_blocks * cal.block_size,
                    produce_rate=cal.client_stream_cap,
                )
                handle = "/input"
            elapsed = yield from deployment.hadoop.run_scan_job(
                handle, scan_rate=GREP_SCAN_RATE
            )
            return elapsed

        elapsed = engine.run(engine.process(scenario()))
        local, remote = deployment.hadoop.last_local, deployment.hadoop.last_remote
        times[backend] = elapsed
        print(
            f"  {backend.upper():>4}: job completed in {elapsed:6.2f} simulated "
            f"seconds ({local} local / {remote} remote maps)"
        )
    gain = (times["hdfs"] - times["bsfs"]) / times["hdfs"]
    print(f"  BSFS finishes {gain:.0%} faster (paper: 35-38% at full scale)")


def main() -> None:
    microbenchmarks()
    grep_job()
    print("\nsimulated Grid'5000 demo OK")


if __name__ == "__main__":
    main()
