#!/usr/bin/env python3
"""Quickstart: the BlobSeer core in five minutes.

Creates an in-process BlobSeer deployment (data providers, metadata
DHT, version manager), then walks through the paper's §III features:
versioned writes and appends, snapshot isolation, the data-layout
primitive Hadoop schedules by, replication failover and version GC.

Run:  python examples/quickstart.py
"""

from repro.blob import LocalBlobStore, StoreConfig, collect_garbage
from repro.util import MB, format_size


def main() -> None:
    # A BlobSeer deployment: 8 data providers, 3 metadata providers.
    # Block size is 1 MB here so the demo is instant; the paper uses
    # 64 MB (the default) to match Hadoop's chunk size.
    store = LocalBlobStore(config=StoreConfig(
        data_providers=8,
        metadata_providers=3,
        block_size=1 * MB,
        replication=2,
    ))

    # --- create / write / append: every mutation is a new snapshot ---
    blob = store.create("demo")
    v1 = store.write(blob, 0, b"A" * (3 * MB))
    v2 = store.write(blob, 1 * MB, b"B" * (1 * MB))  # overwrite block 1
    v3 = store.append(blob, b"C" * (2 * MB))
    print(f"versions created: {v1}, {v2}, {v3}")
    print(f"latest size: {format_size(store.snapshot(blob).size)}")

    # --- versioning: all past snapshots stay readable (§III-A.1) ---
    assert store.read(blob, version=1) == b"A" * (3 * MB)
    assert store.read(blob, offset=1 * MB, size=1 * MB, version=2) == b"B" * MB
    assert store.read(blob, version=3).endswith(b"C" * (2 * MB))
    print("snapshot isolation: v1/v2/v3 all readable, byte-for-byte")

    # --- the affinity primitive Hadoop uses for scheduling (§IV-C) ---
    print("\nblock layout of the latest snapshot:")
    for loc in store.block_locations(blob, 0, store.snapshot(blob).size):
        print(
            f"  [{loc.offset:>8} +{loc.length:>8}]  on {', '.join(loc.providers)}"
        )

    # --- replication: reads survive a provider failure (§VI-B) ---
    victim = store.block_locations(blob, 0, 1 * MB)[0].providers[0]
    store.fail_provider(victim)
    assert store.read(blob, offset=0, size=1 * MB) == b"A" * MB
    print(f"\nfailed provider {victim}; reads fail over to replicas")
    store.recover_provider(victim)

    # --- version GC: drop old snapshots, keep shared data (§III-A.1) ---
    report = collect_garbage(store, blob, retain_from=3)
    print(
        f"GC kept v3+: freed {report.blocks_deleted} blocks "
        f"({format_size(report.bytes_freed)}), {report.nodes_deleted} tree nodes"
    )
    assert store.read(blob, version=3)  # still intact
    print("\nquickstart OK")


if __name__ == "__main__":
    main()
