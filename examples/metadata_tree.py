#!/usr/bin/env python3
"""Figure 1, live: watch the metadata segment tree evolve.

Replays the paper's Figure 1 sequence on a real store — (a) append four
blocks, (b) overwrite two, (c) append one more — and prints each
snapshot's tree, showing which subtrees are new and which are shared
with older versions (the essence of cheap versioning).

Run:  python examples/metadata_tree.py
"""

from repro.blob import InnerNode, LocalBlobStore, NodeKey, StoreConfig
from repro.blob.segment_tree import LeafNode

BS = 64


def render_tree(store, blob, version) -> list[str]:
    """ASCII rendering of one snapshot's tree; '*' marks nodes created
    by this very version, everything else is shared with the past."""
    info = store.snapshot(blob, version)
    resolve = store.key_resolver()
    lines = []

    def visit(key: NodeKey, depth: int) -> None:
        node = store.metadata.get_node(resolve(key))
        marker = "*" if key.version == version else " "
        indent = "    " * depth
        if isinstance(node, LeafNode):
            lines.append(
                f"{indent}{marker} leaf[block {key.offset}] v{key.version}"
                f" -> {node.block.providers[0]}"
            )
            return
        assert isinstance(node, InnerNode)
        lines.append(
            f"{indent}{marker} node[{key.offset}, {key.end}) v{key.version}"
        )
        for child in node.children():
            visit(child, depth + 1)

    visit(NodeKey(blob, version, 0, info.root_span), 0)
    return lines


def show(store, blob, version, title) -> None:
    print(f"--- {title} (version {version}) ---")
    lines = render_tree(store, blob, version)
    fresh = sum(1 for l in lines if "*" in l.split("node")[0].split("leaf")[0])
    for line in lines:
        print(line)
    print(f"    ({fresh} new nodes this version, {len(lines) - fresh} shared)\n")


def main() -> None:
    store = LocalBlobStore(config=StoreConfig(data_providers=4, metadata_providers=2, block_size=BS))
    blob = store.create("fig1")

    # (a) "appending the first four blocks to an empty BLOB"
    store.append(blob, b"A" * (4 * BS))
    show(store, blob, 1, "Figure 1(a): append 4 blocks")

    # (b) "overwriting the first two blocks of the BLOB"
    store.write(blob, 0, b"B" * (2 * BS))
    show(store, blob, 2, "Figure 1(b): overwrite blocks 0-1")

    # (c) "an append of one block to the BLOB"
    store.append(blob, b"C" * BS)
    show(store, blob, 3, "Figure 1(c): append 1 block (root doubles)")

    # All three snapshots remain readable, of course.
    assert store.read(blob, version=1) == b"A" * (4 * BS)
    assert store.read(blob, version=2) == b"B" * (2 * BS) + b"A" * (2 * BS)
    assert store.read(blob, version=3).endswith(b"C" * BS)
    print("all three snapshots still read back byte-for-byte — OK")


if __name__ == "__main__":
    main()
