"""Async-path lint: forbid blocking calls inside coroutines.

The async I/O scheduler (DESIGN.md §13) runs every in-flight block
transfer as a coroutine on ONE event loop, so a single blocking call
inside an ``async def`` parks the whole store, not one transfer — and
it does so silently: the tests still pass, only the in-flight window
collapses to 1.  This lint walks every coroutine under ``src/repro/``
with the ``ast`` module and fails on the calls that block the loop::

    python tools/lint_async.py

Forbidden inside an ``async def`` (sync nested ``def``/``lambda``
bodies are fine — they run off-loop or are the sanctioned inline
segment):

* ``time.sleep(...)`` — latency must be ``await asyncio.sleep``;
* the sync DHT fan-outs ``get_many``/``put_many``/``peek_many`` —
  coroutines await the ``a``-prefixed twins;
* ``_service_delay(...)`` — the async twins defer the simulated
  latency, they never sleep it synchronously;
* ``.result(...)`` — a blocking future wait deadlocks the loop that
  is supposed to complete it.

The sanctioned exception is the delegation pattern itself (an async
twin that has already awaited the latency and calls its own sync body
under ``_defer_delay``): mark such a line ``# asynclint: allow`` with
a reason.  Comment and docstring occurrences never trip the lint —
this is an AST walk, not a grep.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCOPE = REPO / "src" / "repro"
ALLOW_MARKER = "# asynclint: allow"

#: Method names that park the whole event loop when called from a
#: coroutine, with the await-able replacement the message points at.
BLOCKING_METHODS = {
    "get_many": "sync DHT fan-out blocks the loop (await aget_many)",
    "put_many": "sync DHT fan-out blocks the loop (await aput_many)",
    "peek_many": "sync DHT fan-out blocks the loop (await the async twin)",
    "_service_delay": "sync latency sleep blocks the loop (the async "
    "twin awaits asyncio.sleep and defers the sync one)",
    "result": "blocking future wait deadlocks the loop completing it",
}


def _diagnose(node: ast.Call) -> str | None:
    """The violation message for *node*, or None if it is clean."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return None
    if (
        func.attr == "sleep"
        and isinstance(func.value, ast.Name)
        and func.value.id == "time"
    ):
        return "time.sleep blocks the loop (use await asyncio.sleep)"
    return BLOCKING_METHODS.get(func.attr)


class _CoroutineCalls(ast.NodeVisitor):
    """Collects blocking calls whose nearest enclosing function is async."""

    def __init__(self) -> None:
        self.stack: list[bool] = []  # True = async frame
        self.hits: list[tuple[int, str, str]] = []  # (lineno, label, attr)

    def _visit_frame(self, node: ast.AST, is_async: bool) -> None:
        self.stack.append(is_async)
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_frame(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_frame(node, is_async=True)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_frame(node, is_async=False)

    def visit_Call(self, node: ast.Call) -> None:
        if self.stack and self.stack[-1]:
            label = _diagnose(node)
            if label is not None:
                self.hits.append((node.lineno, label, ast.unparse(node.func)))
        self.generic_visit(node)


def lint(root: Path = SCOPE) -> list[str]:
    violations: list[str] = []
    for path in sorted(root.rglob("*.py")):
        source = path.read_text()
        lines = source.splitlines()
        finder = _CoroutineCalls()
        finder.visit(ast.parse(source, filename=str(path)))
        shown = path.relative_to(REPO) if path.is_relative_to(REPO) else path
        for lineno, label, call in finder.hits:
            if ALLOW_MARKER in lines[lineno - 1]:
                continue
            violations.append(
                f"{shown}:{lineno}: {call}() in a coroutine — {label}"
            )
    return violations


def main() -> int:
    violations = lint()
    if violations:
        print("async-path lint failed (DESIGN.md §13):", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        print(
            "\nAwait the async twin instead, or — for the sanctioned "
            "sync delegation under _defer_delay — mark the line "
            f"'{ALLOW_MARKER} <reason>'.",
            file=sys.stderr,
        )
        return 1
    print(
        f"async-path lint OK: no blocking calls in "
        f"{SCOPE.relative_to(REPO)} coroutines"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
