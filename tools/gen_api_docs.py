#!/usr/bin/env python3
"""Regenerate docs/API.md: every public symbol with its summary line.

Run from the repository root:  python tools/gen_api_docs.py
"""

import importlib
import inspect
import pkgutil
from pathlib import Path


def collect_modules() -> list[str]:
    modules = ["repro", "repro.errors", "repro.fsapi", "repro.cli"]
    for pkg_name in [
        "repro.util", "repro.simulation", "repro.dht", "repro.blob",
        "repro.bsfs", "repro.hdfs", "repro.mapreduce",
        "repro.mapreduce.apps", "repro.deploy", "repro.harness",
    ]:
        pkg = importlib.import_module(pkg_name)
        modules.append(pkg_name)
        for info in pkgutil.iter_modules(pkg.__path__):
            if not info.ispkg:
                modules.append(f"{pkg_name}.{info.name}")
    return modules


def main() -> None:
    lines = [
        "# API reference",
        "",
        "Generated from docstrings (`python tools/gen_api_docs.py`).",
        "Every public symbol listed here is importable from the named module.",
        "",
    ]
    seen = set()
    for name in collect_modules():
        if name in seen:
            continue
        seen.add(name)
        mod = importlib.import_module(name)
        doc = (inspect.getdoc(mod) or "").split("\n")[0]
        lines.append(f"## `{name}`")
        lines.append("")
        if doc:
            lines.extend([doc, ""])
        public = getattr(mod, "__all__", None)
        if not public:
            lines.append("")
            continue
        for symbol in public:
            obj = getattr(mod, symbol)
            home = getattr(obj, "__module__", name)
            if inspect.ismodule(obj):
                continue
            if home != name and name.count(".") == 1:
                continue  # package __init__ re-export
            summary = (inspect.getdoc(obj) or "").split("\n")[0]
            kind = "class" if inspect.isclass(obj) else (
                "function" if callable(obj) else "constant")
            lines.append(f"- **`{symbol}`** ({kind}) — {summary}")
        lines.append("")
    out = Path(__file__).parents[1] / "docs" / "API.md"
    out.write_text("\n".join(lines) + "\n")
    print(f"wrote {out} ({len(lines)} lines)")


if __name__ == "__main__":
    main()
