"""Benchmark regression gate: compare a pytest-benchmark run to baseline.

CI runs the figure benchmarks (fig3–fig6) with ``--benchmark-json`` and
then::

    python tools/bench_compare.py benchmark.json

which fails (exit 1) if any figure benchmark regressed more than the
threshold (default 25%) against the committed
``benchmarks/baseline.json``.  Because CI runners differ in raw speed,
per-benchmark ratios are normalized by the median ratio across all
benchmarks by default: a uniformly slower machine shifts every ratio
equally and cancels out, while a *single* benchmark regressing — the
signature of an actual code regression — stands out against the median.
Disable with ``--no-normalize`` for same-machine comparisons.  The
normalization is bounded: a median ratio beyond ``--max-drift``
(default 1.5) fails the gate outright, so a whole-suite code
regression cannot hide behind "the machine must be slow".

Refresh the baseline after an intentional performance change — give
``--write-baseline`` *several* runs and it stores the per-benchmark
median, so one noisy run cannot skew the gate (single-run figure
timings vary by ±35% on this container)::

    for i in 1 2 3; do
      PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json=bench-$i.json
    done
    python tools/bench_compare.py bench-1.json bench-2.json bench-3.json --write-baseline

(``--update`` remains as the single-run alias.)  ``--warn-only``
prints the full comparison but always exits 0 — the nightly drift
watcher uses it so slow creep is visible without failing the cron run.
"""

from __future__ import annotations

import argparse
import json
import re
import statistics
import sys
from pathlib import Path

#: Benchmarks the gate watches: the paper-figure regenerations.
DEFAULT_PATTERN = r"fig[3-6]"


def load_means(path: Path, pattern: str) -> dict[str, float]:
    """Mean wall time per matching benchmark from a pytest-benchmark JSON
    (or from a baseline file previously written by ``--update``)."""
    with open(path) as fh:
        data = json.load(fh)
    if "benchmarks" in data and isinstance(data["benchmarks"], dict):
        entries = data["benchmarks"].items()  # our trimmed baseline format
    else:
        entries = (
            (bench["name"], bench["stats"]["mean"])
            for bench in data.get("benchmarks", [])
        )
    regex = re.compile(pattern)
    return {name: float(mean) for name, mean in entries if regex.search(name)}


def median_means(runs: list[dict[str, float]]) -> dict[str, float]:
    """Per-benchmark median across several runs' mean times.

    A benchmark missing from some run (e.g. one aborted sweep) still
    gets a baseline entry from the runs that have it — the gate's
    MISSING check guards renames, not flaky partial refreshes.
    """
    names = sorted({name for run in runs for name in run})
    return {
        name: statistics.median([run[name] for run in runs if name in run])
        for name in names
    }


def write_baseline(path: Path, means: dict[str, float]) -> None:
    path.write_text(
        json.dumps(
            {
                "note": (
                    "Figure-benchmark baseline for tools/bench_compare.py; "
                    "refresh with --write-baseline (median of several runs) "
                    "after intentional perf changes."
                ),
                "benchmarks": dict(sorted(means.items())),
            },
            indent=2,
        )
        + "\n"
    )


def compare(
    current: dict[str, float],
    baseline: dict[str, float],
    threshold: float,
    normalize: bool,
    max_drift: float = 1.5,
) -> tuple[list[str], list[str]]:
    """Returns (report lines, failed benchmark names).

    Failures include genuine regressions AND baseline benchmarks
    missing from the current run: a rename that silently stopped a
    figure from being gated must fail loudly (refresh the baseline
    with ``--update`` after intentional renames), not green-wash CI.
    """
    shared = sorted(set(current) & set(baseline))
    lines, regressed = [], []
    if not shared:
        return (
            ["no benchmarks shared with the baseline — the gate checked NOTHING"],
            sorted(baseline) or ["<empty baseline>"],
        )
    ratios = {name: current[name] / baseline[name] for name in shared}
    drift = statistics.median(ratios.values()) if normalize else 1.0
    lines.append(
        f"machine drift (median ratio): {drift:.3f}"
        + ("" if normalize else " [normalization off]")
    )
    if drift > max_drift:
        # Normalization cannot tell a uniformly slower machine from a
        # uniformly slower codebase; past this bound, stop assuming the
        # machine and make a human look (rerun, or refresh the baseline).
        regressed.append("<median-drift>")
        lines.append(
            f"  median drift {drift:.2f} exceeds --max-drift {max_drift:.2f}: "
            "either the runner changed radically or the whole suite regressed"
            "  << FAILED"
        )
    for name in shared:
        adjusted = ratios[name] / drift
        flag = ""
        if adjusted > 1.0 + threshold:
            regressed.append(name)
            flag = f"  << REGRESSED >{threshold:.0%}"
        lines.append(
            f"  {name}: {baseline[name]:.4f}s -> {current[name]:.4f}s "
            f"(x{ratios[name]:.2f}, adjusted x{adjusted:.2f}){flag}"
        )
    for name in sorted(set(baseline) - set(current)):
        regressed.append(name)
        lines.append(
            f"  {name}: MISSING from current run — the gate cannot check it"
            "  << FAILED"
        )
    return lines, regressed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "current",
        type=Path,
        nargs="+",
        help="pytest-benchmark JSON(s): one to gate against the baseline, "
        "several with --write-baseline to store their per-benchmark median",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "benchmarks" / "baseline.json",
        help="baseline file (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated per-benchmark slowdown (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--pattern",
        default=DEFAULT_PATTERN,
        help=f"regex choosing gated benchmarks (default {DEFAULT_PATTERN!r})",
    )
    parser.add_argument(
        "--no-normalize",
        action="store_true",
        help="compare raw times instead of median-normalized ratios",
    )
    parser.add_argument(
        "--max-drift",
        type=float,
        default=1.5,
        help="fail if the median ratio itself exceeds this (whole-suite "
        "regressions cannot hide behind normalization; default 1.5)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline from the given run(s) — the "
        "per-benchmark MEDIAN when several are given — and exit",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="alias for --write-baseline (kept for muscle memory)",
    )
    parser.add_argument(
        "--warn-only",
        action="store_true",
        help="report regressions but exit 0 (the nightly drift watcher)",
    )
    args = parser.parse_args(argv)

    runs = [load_means(path, args.pattern) for path in args.current]
    if not any(runs):
        names = ", ".join(str(path) for path in args.current)
        print(f"no benchmarks matching {args.pattern!r} in {names}")
        return 1
    if args.write_baseline or args.update:
        means = median_means(runs)
        write_baseline(args.baseline, means)
        print(
            f"baseline updated: {args.baseline} "
            f"({len(means)} benchmarks, median of {len(runs)} run(s))"
        )
        return 0
    if len(runs) > 1:
        print("multiple run files only make sense with --write-baseline")
        return 1
    current = runs[0]

    if not args.baseline.exists():
        print(
            f"baseline {args.baseline} missing; "
            "run with --write-baseline to create it"
        )
        return 1
    baseline = load_means(args.baseline, args.pattern)
    lines, regressed = compare(
        current,
        baseline,
        args.threshold,
        normalize=not args.no_normalize,
        max_drift=args.max_drift,
    )
    print("\n".join(lines))
    if regressed:
        print(
            f"\n{'WARN' if args.warn_only else 'FAIL'}: {len(regressed)} "
            f"benchmark(s) regressed more than "
            f"{args.threshold:.0%} or went missing: {', '.join(regressed)}"
        )
        return 0 if args.warn_only else 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
