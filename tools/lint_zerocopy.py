"""Zero-copy lint: forbid re-materialization in the blob hot path.

The data-plane refactor (DESIGN.md §11) moved ``src/repro/blob/`` onto
buffer views end-to-end: reads gather into ONE preallocated buffer,
slices are ``memoryview`` windows, and the only sanctioned
materialization is :func:`repro.blob.block.materialize`.  A stray
``.tobytes()`` or ``b"".join`` creeping back in silently reintroduces
per-byte copies that the figure benchmarks then mis-measure — so CI
fails on any new occurrence::

    python tools/lint_zerocopy.py

Scope: every module under ``src/repro/blob/`` except ``block.py``
itself (payloads must implement ``tobytes`` somewhere — that is where
``materialize`` lives and where the copies are *counted*).  A line that
genuinely needs an exception carries ``# zerocopy: allow`` with a
reason; comment-only occurrences (like the strings in this docstring)
are ignored.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
HOT_PATH = REPO / "src" / "repro" / "blob"
EXEMPT_FILES = {"block.py"}
ALLOW_MARKER = "# zerocopy: allow"

#: Each pattern re-materializes bytes the view plumbing already holds.
FORBIDDEN = [
    (re.compile(r"\.tobytes\s*\("), ".tobytes() call"),
    (re.compile(r"b(\"\"|'')\s*\.\s*join"), 'b"".join reassembly'),
]


def strip_noncode(line: str) -> str:
    """Drop the comment tail so commented-out code cannot trip the lint."""
    return line.split("#", 1)[0]


def lint(root: Path = HOT_PATH) -> list[str]:
    violations: list[str] = []
    for path in sorted(root.glob("*.py")):
        if path.name in EXEMPT_FILES:
            continue
        in_docstring = False
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            quotes = line.count('"""') + line.count("'''")
            if in_docstring:
                if quotes % 2 == 1:
                    in_docstring = False
                continue
            if quotes % 2 == 1:
                in_docstring = True
            if ALLOW_MARKER in line:
                continue
            code = strip_noncode(line)
            shown = path.relative_to(REPO) if path.is_relative_to(REPO) else path
            for pattern, label in FORBIDDEN:
                if pattern.search(code):
                    violations.append(
                        f"{shown}:{lineno}: {label} in the "
                        f"zero-copy hot path: {line.strip()}"
                    )
    return violations


def main() -> int:
    violations = lint()
    if violations:
        print("zero-copy lint failed (DESIGN.md §11):", file=sys.stderr)
        for violation in violations:
            print(f"  {violation}", file=sys.stderr)
        print(
            "\nUse repro.blob.block.materialize(payload, stats) for a "
            "sanctioned user-facing copy, or mark a justified exception "
            f"with '{ALLOW_MARKER} <reason>'.",
            file=sys.stderr,
        )
        return 1
    print(f"zero-copy lint OK: {HOT_PATH.relative_to(REPO)} is view-clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
